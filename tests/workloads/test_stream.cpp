#include <gtest/gtest.h>

#include "workloads/runner.hpp"

namespace vl::workloads {
namespace {

TEST(Stream, TriadComputesCorrectValues) {
  runtime::Machine m;
  StreamParams p;
  p.threads = 2;
  p.lines_per_array = 64;  // small: correctness check only
  p.iters = 1;
  // Seed b and c.
  // (Allocation order inside run_stream: a, b, c — replicate it.)
  const Addr a = 0x1000'0000;  // first alloc in a fresh machine
  const WorkloadResult r = run_stream(m, p);
  EXPECT_GT(r.ticks, 0u);
  // b and c were zero, so a must be 0 everywhere: verify the kernel ran.
  const Addr a0 = a;
  EXPECT_EQ(m.mem().backing().read(a0, 8), 0u);
}

TEST(Stream, LargeWorkingSetDrivesDram) {
  runtime::Machine m;
  StreamParams p;
  p.threads = 4;
  p.lines_per_array = 8192;  // 3 x 512 KiB > 1 MiB LLC
  p.iters = 1;
  const WorkloadResult r = run_stream(m, p);
  EXPECT_GT(r.mem.dram_reads, 8192u);
}

TEST(Interference, StreamAloneVsWithPingPong) {
  const auto alone = run_stream_interference(squeue::Backend::kVl,
                                             /*with_pingpong=*/false);
  const auto with_vl = run_stream_interference(squeue::Backend::kVl, true);
  ASSERT_GT(alone.stream.ticks, 0u);
  ASSERT_GT(with_vl.stream.ticks, 0u);
  EXPECT_GT(with_vl.pingpong_msgs, 0u);
  // Fig. 14: the perturbation is small (paper: <= 2%; allow 10% here).
  const double ratio = static_cast<double>(with_vl.stream.ticks) /
                       static_cast<double>(alone.stream.ticks);
  EXPECT_LT(ratio, 1.10);
  EXPECT_GT(ratio, 0.90);
}

TEST(Interference, AllBackendsCompleteWithoutDeadlock) {
  for (auto b : {squeue::Backend::kBlfq, squeue::Backend::kZmq,
                 squeue::Backend::kVl}) {
    const auto r = run_stream_interference(b, true);
    EXPECT_GT(r.stream.ticks, 0u) << squeue::to_string(b);
    EXPECT_GT(r.pingpong_msgs, 0u) << squeue::to_string(b);
  }
}

}  // namespace
}  // namespace vl::workloads
