// Integration tests: every Table II workload completes correctly on every
// queue backend (small scales — the benches run the full sizes), and the
// cross-backend relationships the paper reports hold in miniature.

#include <gtest/gtest.h>

#include "workloads/runner.hpp"

namespace vl::workloads {
namespace {

using squeue::Backend;

struct Combo {
  Kind kind;
  Backend backend;
};

class WorkloadMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(WorkloadMatrix, CompletesAndReportsSaneNumbers) {
  RunConfig rc;
  rc.backend = GetParam().backend;
  rc.scale = 1;
  rc.bitonic_workers = 3;
  const WorkloadResult r = run(GetParam().kind, rc);
  EXPECT_GT(r.ticks, 0u);
  EXPECT_GT(r.messages, 0u);
  EXPECT_GT(r.ns, 0.0);
  // Correctness sentinels embedded in the workload name must be absent.
  EXPECT_EQ(r.workload.find('!'), std::string::npos) << r.workload;
}

std::vector<Combo> all_combos() {
  std::vector<Combo> cs;
  for (Kind k : {Kind::kPingPong, Kind::kHalo, Kind::kSweep, Kind::kIncast,
                 Kind::kFir, Kind::kBitonic, Kind::kPipeline,
                 Kind::kAllreduce, Kind::kScatterGather}) {
    for (Backend b : {Backend::kBlfq, Backend::kZmq, Backend::kVl,
                      Backend::kVlIdeal, Backend::kCaf}) {
      cs.push_back({k, b});
    }
  }
  return cs;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, WorkloadMatrix,
                         ::testing::ValuesIn(all_combos()),
                         [](const auto& info) {
                           std::string n = to_string(info.param.kind);
                           n += "_";
                           n += squeue::to_string(info.param.backend);
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

TEST(WorkloadRelations, VlBeatsBlfqOnPingPong) {
  RunConfig rc;
  rc.backend = Backend::kBlfq;
  const auto blfq = run(Kind::kPingPong, rc);
  rc.backend = Backend::kVl;
  const auto vl = run(Kind::kPingPong, rc);
  EXPECT_LT(vl.ns, blfq.ns);  // paper: 11.36x — here just require a win
}

TEST(WorkloadRelations, VlIdealAtLeastAsFastAsVl) {
  RunConfig rc;
  rc.backend = Backend::kVl;
  const auto vl = run(Kind::kPingPong, rc);
  rc.backend = Backend::kVlIdeal;
  const auto ideal = run(Kind::kPingPong, rc);
  EXPECT_LE(ideal.ns, vl.ns * 1.05);
}

TEST(WorkloadRelations, VlSnoopsFarBelowBlfq) {
  RunConfig rc;
  rc.backend = Backend::kBlfq;
  const auto blfq = run(Kind::kPingPong, rc);
  rc.backend = Backend::kVl;
  const auto vl = run(Kind::kPingPong, rc);
  EXPECT_LT(vl.mem.snoops * 5, blfq.mem.snoops);
}

TEST(WorkloadRelations, BlfqSpillsToDramOnIncastVlDoesNot) {
  RunConfig rc;
  rc.scale = 1;
  rc.backend = Backend::kBlfq;
  const auto blfq = run(Kind::kIncast, rc);
  rc.backend = Backend::kVl;
  const auto vl = run(Kind::kIncast, rc);
  EXPECT_GT(blfq.mem.mem_txns(), 2 * vl.mem.mem_txns());
}

TEST(WorkloadRelations, FirContextSwitchesCauseInjectRetries) {
  RunConfig rc;
  rc.backend = Backend::kVl;
  const auto vl = run(Kind::kFir, rc);
  // Two threads per core -> frequent pushable-bit clears -> retries.
  EXPECT_GT(vl.vlrd.inject_retry, 0u);
}

TEST(WorkloadRelations, BitonicScalesWithWorkersUnderVl) {
  // Fig. 12's claim: as workers grow, the queue mechanism decides the
  // sort time — VL's synchronization cost grows far slower than the
  // shared-memory queues'. (The kernel itself is communication-bound at
  // this size, so absolute time does not shrink with workers under any
  // backend; the relation is between mechanisms.)
  auto time_at = [](Backend b, int workers) {
    RunConfig rc;
    rc.backend = b;
    rc.scale = 2;
    rc.bitonic_workers = workers;
    return run(Kind::kBitonic, rc).ns;
  };
  const double vl1 = time_at(Backend::kVl, 1);
  const double vl7 = time_at(Backend::kVl, 7);
  const double blfq1 = time_at(Backend::kBlfq, 1);
  const double blfq7 = time_at(Backend::kBlfq, 7);
  EXPECT_LT(vl7, blfq7);                  // VL wins outright at 7 workers
  EXPECT_LT(vl7 / vl1, blfq7 / blfq1);    // and degrades less from 1 -> 7
}

TEST(WorkloadRelations, VlWinsCollectives) {
  // The extension collectives are hop-latency-bound, so VL's advantage
  // carries over from the paper's halo/bitonic columns.
  for (Kind k : {Kind::kAllreduce, Kind::kScatterGather}) {
    RunConfig rc;
    rc.scale = 1;
    rc.backend = Backend::kBlfq;
    const auto blfq = run(k, rc);
    rc.backend = Backend::kVl;
    const auto vl = run(k, rc);
    EXPECT_LT(vl.ns, blfq.ns) << to_string(k);
  }
}

TEST(WorkloadRelations, CafSlowerThanVlOnLineSizedPingPong) {
  // Fig. 15: 64 B messages cost CAF ~7 register trips vs one VL line push.
  runtime::Machine mc(squeue::config_for(Backend::kCaf));
  squeue::ChannelFactory fc(mc, Backend::kCaf);
  const auto caf = run_pingpong(mc, fc, 1, /*msg_words=*/7);

  runtime::Machine mv(squeue::config_for(Backend::kVl));
  squeue::ChannelFactory fv(mv, Backend::kVl);
  const auto vl = run_pingpong(mv, fv, 1, /*msg_words=*/7);
  EXPECT_LT(vl.ns, caf.ns);
}

}  // namespace
}  // namespace vl::workloads
