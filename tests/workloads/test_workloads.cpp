// Integration tests: every *registered* workload completes correctly on
// every queue backend (small scales — the benches run the full sizes), the
// cross-backend relationships the paper reports hold in miniature, and the
// Fig. 12 absolute-speedup curve lands near the paper with the calibrated
// per-comparison cost.

#include <gtest/gtest.h>

#include "workloads/runner.hpp"

namespace vl::workloads {
namespace {

using squeue::Backend;

struct Combo {
  std::string name;
  Backend backend;
};

class WorkloadMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(WorkloadMatrix, CompletesAndReportsSaneNumbers) {
  RunConfig rc = default_config(GetParam().name);
  rc.backend = GetParam().backend;
  rc.scale = 1;
  rc.bitonic_workers = 3;
  const WorkloadResult r = run(GetParam().name, rc);
  EXPECT_GT(r.ticks, 0u);
  EXPECT_GT(r.messages, 0u);
  EXPECT_GT(r.ns, 0.0);
  EXPECT_GT(r.events, 0u);
  // Correctness sentinels embedded in the workload name must be absent.
  EXPECT_EQ(r.workload.find('!'), std::string::npos) << r.workload;
}

std::vector<Combo> all_combos() {
  std::vector<Combo> cs;
  for (const std::string& name : workload_names()) {
    for (Backend b : {Backend::kBlfq, Backend::kZmq, Backend::kVl,
                      Backend::kVlIdeal, Backend::kCaf}) {
      cs.push_back({name, b});
    }
  }
  return cs;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, WorkloadMatrix,
                         ::testing::ValuesIn(all_combos()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           n += "_";
                           n += squeue::to_string(info.param.backend);
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

TEST(WorkloadRegistry, LooksUpByNameAndRejectsUnknown) {
  EXPECT_NE(find_workload("halo"), nullptr);
  EXPECT_NE(find_workload("bitonic"), nullptr);
  EXPECT_EQ(find_workload("no-such-workload"), nullptr);
  // Registered names are unique and ordered.
  const auto names = workload_names();
  EXPECT_GE(names.size(), 11u);  // 7 Table II + 4 extension kernels
  for (std::size_t i = 1; i < names.size(); ++i)
    EXPECT_NE(names[i - 1], names[i]);
}

TEST(WorkloadRegistry, ChannelCountsComeFromTheWorldGraph) {
  // Workloads that declare a channel-count fn feed the VL quota carve.
  const WorkloadInfo* sg = find_workload("scatter-gather");
  ASSERT_NE(sg, nullptr);
  ASSERT_NE(sg->channel_count, nullptr);
  // star(7) biconnected: 2 * 6 directed channels.
  EXPECT_EQ(sg->channel_count(RunConfig{}), 12u);

  const WorkloadInfo* fir = find_workload("FIR");
  ASSERT_NE(fir, nullptr);
  ASSERT_NE(fir->channel_count, nullptr);
  EXPECT_EQ(fir->channel_count(RunConfig{}), 31u);
}

TEST(WorkloadRelations, VlBeatsBlfqOnPingPong) {
  RunConfig rc;
  rc.backend = Backend::kBlfq;
  const auto blfq = run("ping-pong", rc);
  rc.backend = Backend::kVl;
  const auto vl = run("ping-pong", rc);
  EXPECT_LT(vl.ns, blfq.ns);  // paper: 11.36x — here just require a win
}

TEST(WorkloadRelations, VlIdealAtLeastAsFastAsVl) {
  RunConfig rc;
  rc.backend = Backend::kVl;
  const auto vl = run("ping-pong", rc);
  rc.backend = Backend::kVlIdeal;
  const auto ideal = run("ping-pong", rc);
  EXPECT_LE(ideal.ns, vl.ns * 1.05);
}

TEST(WorkloadRelations, VlSnoopsFarBelowBlfq) {
  RunConfig rc;
  rc.backend = Backend::kBlfq;
  const auto blfq = run("ping-pong", rc);
  rc.backend = Backend::kVl;
  const auto vl = run("ping-pong", rc);
  EXPECT_LT(vl.mem.snoops * 5, blfq.mem.snoops);
}

TEST(WorkloadRelations, BlfqSpillsToDramOnIncastVlDoesNot) {
  RunConfig rc;
  rc.scale = 1;
  rc.backend = Backend::kBlfq;
  const auto blfq = run("incast", rc);
  rc.backend = Backend::kVl;
  const auto vl = run("incast", rc);
  EXPECT_GT(blfq.mem.mem_txns(), 2 * vl.mem.mem_txns());
}

TEST(WorkloadRelations, FirContextSwitchesCauseInjectRetries) {
  RunConfig rc;
  rc.backend = Backend::kVl;
  const auto vl = run("FIR", rc);
  // Two threads per core -> frequent pushable-bit clears -> retries.
  EXPECT_GT(vl.vlrd.inject_retry, 0u);
}

TEST(WorkloadRelations, BitonicScalesWithWorkersUnderVl) {
  // Fig. 12's claim: as workers grow, the queue mechanism decides the
  // sort time — VL's synchronization cost grows far slower than the
  // shared-memory queues'. (The kernel itself is communication-bound at
  // this size, so absolute time does not shrink with workers under any
  // backend; the relation is between mechanisms.)
  auto time_at = [](Backend b, int workers) {
    RunConfig rc;
    rc.backend = b;
    rc.scale = 2;
    rc.bitonic_workers = workers;
    return run("bitonic", rc).ns;
  };
  const double vl1 = time_at(Backend::kVl, 1);
  const double vl7 = time_at(Backend::kVl, 7);
  const double blfq1 = time_at(Backend::kBlfq, 1);
  const double blfq7 = time_at(Backend::kBlfq, 7);
  EXPECT_LT(vl7, blfq7);                  // VL wins outright at 7 workers
  EXPECT_LT(vl7 / vl1, blfq7 / blfq1);    // and degrades less from 1 -> 7
}

TEST(WorkloadRelations, Fig12AbsoluteSpeedupNearPaperCurve) {
  // Fig. 12 calibration: with the per-comparison cost set to
  // kFig12CompareCost, VL's *absolute* speedup over the BLFQ/1-worker
  // baseline should land near the paper's curve — rising from ~1.9x at 4
  // threads to ~2.8x at 8 threads. Generous tolerances: this asserts the
  // curve's position and rise, not simulator-exact values.
  auto time_at = [](Backend b, int workers) {
    RunConfig rc;
    rc.backend = b;
    rc.scale = 2;
    rc.bitonic_workers = workers;
    rc.bitonic_compare_cost = kFig12CompareCost;
    return run("bitonic", rc).ns;
  };
  const double base = time_at(Backend::kBlfq, 1);
  const double s3 = base / time_at(Backend::kVl, 3);
  const double s7 = base / time_at(Backend::kVl, 7);
  EXPECT_NEAR(s3, 1.9, 0.45);
  EXPECT_NEAR(s7, 2.8, 0.45);
  EXPECT_GT(s7, s3);  // still gaining at 8 threads, as in the paper
}

TEST(WorkloadRelations, VlWinsCollectives) {
  // The bsp collectives are hop-latency-bound, so VL's advantage carries
  // over from the paper's halo/bitonic columns.
  for (const char* name :
       {"allreduce", "scatter-gather", "stencil", "param-server"}) {
    RunConfig rc;
    rc.scale = 1;
    rc.backend = Backend::kBlfq;
    const auto blfq = run(name, rc);
    rc.backend = Backend::kVl;
    const auto vl = run(name, rc);
    EXPECT_LT(vl.ns, blfq.ns) << name;
  }
}

TEST(WorkloadRelations, CafSlowerThanVlOnLineSizedPingPong) {
  // Fig. 15: 64 B messages cost CAF ~7 register trips vs one VL line push.
  runtime::Machine mc(squeue::config_for(Backend::kCaf));
  squeue::ChannelFactory fc(mc, Backend::kCaf);
  const auto caf = run_pingpong(mc, fc, 1, /*msg_words=*/7);

  runtime::Machine mv(squeue::config_for(Backend::kVl));
  squeue::ChannelFactory fv(mv, Backend::kVl);
  const auto vl = run_pingpong(mv, fv, 1, /*msg_words=*/7);
  EXPECT_LT(vl.ns, caf.ns);
}

}  // namespace
}  // namespace vl::workloads
