#include "arch/area_model.hpp"

#include <gtest/gtest.h>

namespace vl::arch {
namespace {

TEST(AreaModel, Table3ConfigMatchesPublishedNumbers) {
  AreaModel m{sim::VlrdConfig{}};
  const AreaBreakdown b = m.estimate();
  EXPECT_NEAR(b.buffers_mm2, AreaModel::kPaperBufferMm2, 1e-9);
  EXPECT_NEAR(b.total_mm2, AreaModel::kPaperTotalMm2, 1e-9);
  // "our design is 13% of the single-core area"
  EXPECT_NEAR(b.pct_of_a72, 13.0, 0.7);
  // "less than 1% of overall SoC area" (16 cores)
  EXPECT_LT(b.pct_of_16core, 1.0);
}

TEST(AreaModel, StorageIsAboutFiveKiB) {
  // Table III: "64 entries per prodBuf, consBuf and linkTab (about 5 KiB)".
  AreaModel m{sim::VlrdConfig{}};
  const AreaBreakdown b = m.estimate();
  const double kib = static_cast<double>(b.total_bits) / 8.0 / 1024.0;
  EXPECT_GT(kib, 4.0);
  EXPECT_LT(kib, 7.0);
}

TEST(AreaModel, AreaScalesWithBufferDepth) {
  sim::VlrdConfig small;
  small.prod_entries = small.cons_entries = small.link_entries = 16;
  sim::VlrdConfig big;
  big.prod_entries = big.cons_entries = big.link_entries = 256;
  const auto a = AreaModel{small}.estimate();
  const auto c = AreaModel{big}.estimate();
  EXPECT_LT(a.buffers_mm2, c.buffers_mm2);
  // Roughly linear in entries (index widths grow slowly).
  EXPECT_NEAR(c.buffers_mm2 / a.buffers_mm2, 16.0, 4.0);
}

TEST(AreaModel, DataFieldDominatesProducerBuffer) {
  AreaModel m{sim::VlrdConfig{}};
  const AreaBreakdown b = m.estimate();
  // 64 x 512 data bits = 32768; prodBuf must dominate total storage.
  EXPECT_GT(b.prod_buf_bits, b.cons_buf_bits);
  EXPECT_GT(b.prod_buf_bits, b.link_tab_bits * 10);
}

}  // namespace
}  // namespace vl::arch
