// bsp::World contract tests: put/get/coarray/queue superstep semantics,
// identical results across all five queue backends, park-don't-poll
// barriers (zero events at idle), and byte-identical determinism.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bsp/world.hpp"
#include "squeue/factory.hpp"

namespace vl::bsp {
namespace {

using runtime::Machine;
using sim::Co;
using sim::spawn;
using squeue::Backend;
using squeue::ChannelFactory;

constexpr Backend kAll[] = {Backend::kBlfq, Backend::kZmq, Backend::kVl,
                            Backend::kVlIdeal, Backend::kCaf};

std::string backend_name(Backend b) {
  switch (b) {
    case Backend::kBlfq: return "BLFQ";
    case Backend::kZmq: return "ZMQ";
    case Backend::kVl: return "VL";
    case Backend::kVlIdeal: return "VLideal";
    case Backend::kCaf: return "CAF";
  }
  return "?";
}

// --- put: lands after sync, not before; applied deterministically -----------

TEST(BspWorld, PutIsStagedUntilSync) {
  Machine m(squeue::config_for(Backend::kVl));
  ChannelFactory f(m, Backend::kVl);
  Topology topo(2);
  topo.biconnect(0, 1);
  World w(m, f, topo, "t");
  const Var v = w.var(7);

  std::uint64_t before_sync = 0, after_sync = 0;
  spawn([](Proc& p, Var v) -> Co<void> {
    p.put(1, v, 42);
    co_await p.sync();
  }(w.proc(0), v));
  spawn([](Proc& p, Var v, std::uint64_t* before,
           std::uint64_t* after) -> Co<void> {
    *before = p.local(v);
    co_await p.sync();
    *after = p.local(v);
  }(w.proc(1), v, &before_sync, &after_sync));
  m.run();

  EXPECT_EQ(before_sync, 7u);  // init value, put not yet visible
  EXPECT_EQ(after_sync, 42u);
  EXPECT_EQ(w.value(v, 0), 7u);  // sender's own image untouched
  EXPECT_EQ(w.supersteps(), 1u);
  EXPECT_EQ(w.messages(), 1u);
}

// --- get: BSP semantics — reads the peer's value as of superstep start ------

TEST(BspWorld, GetSeesSuperstepStartValue) {
  Machine m(squeue::config_for(Backend::kZmq));
  ChannelFactory f(m, Backend::kZmq);
  Topology topo(2);
  topo.biconnect(0, 1);
  World w(m, f, topo, "t");
  const Var v = w.var();
  w.value(v, 1) = 100;

  std::uint64_t got = 0;
  spawn([](Proc& p, Var v, std::uint64_t* out) -> Co<void> {
    const GetHandle h = p.get(1, v);
    p.put(1, v, 999);  // same-superstep put must NOT be visible to the get
    co_await p.sync();
    *out = p.got(h);
  }(w.proc(0), v, &got));
  spawn([](Proc& p, Var v) -> Co<void> {
    p.local(v) = 100;  // unchanged
    co_await p.sync();
  }(w.proc(1), v));
  m.run();

  EXPECT_EQ(got, 100u);           // pre-put value
  EXPECT_EQ(w.value(v, 1), 999u);  // the put still landed
}

// --- coarray elements + self-ops -------------------------------------------

TEST(BspWorld, CoarrayPutsAndSelfOpsShortCircuit) {
  Machine m(squeue::config_for(Backend::kBlfq));
  ChannelFactory f(m, Backend::kBlfq);
  Topology topo(3);
  topo.biconnect(0, 1);
  topo.biconnect(1, 2);
  World w(m, f, topo, "t");
  const Coarray a = w.coarray(4);

  for (int pid = 0; pid < 3; ++pid) {
    spawn([](Proc& p, Coarray a) -> Co<void> {
      // Everyone (that can) writes element `src` of each neighbor and of
      // itself; self-puts must work without any channel message.
      for (int dst = 0; dst < p.nprocs(); ++dst) {
        if (dst != p.id() && !(dst == p.id() - 1 || dst == p.id() + 1))
          continue;
        p.put(dst, a, static_cast<std::size_t>(p.id()),
              static_cast<std::uint64_t>(100 * p.id() + dst));
      }
      co_await p.sync();
    }(w.proc(pid), a));
  }
  m.run();

  EXPECT_EQ(w.value(a, 0, 0), 0u);     // pid 0 wrote 100*0+0 = 0
  EXPECT_EQ(w.value(a, 0, 1), 100u);   // from pid 1
  EXPECT_EQ(w.value(a, 1, 0), 1u);     // from pid 0
  EXPECT_EQ(w.value(a, 1, 2), 201u);   // from pid 2
  EXPECT_EQ(w.value(a, 2, 1), 102u);   // from pid 1
  EXPECT_EQ(w.value(a, 2, 2), 202u);   // self-put
  // 4 cross-proc messages; the 3 self-puts are free.
  EXPECT_EQ(w.messages(), 4u);
}

// --- queue inbox: sorted by src, FIFO within src, cleared next sync ---------

TEST(BspWorld, InboxSortedBySourceAndCleared) {
  Machine m(squeue::config_for(Backend::kVl));
  ChannelFactory f(m, Backend::kVl);
  World w(m, f, Topology::star(4), "t");
  const Queue q = w.queue();

  std::vector<std::vector<std::uint64_t>> seen(2);
  spawn([](Proc& p, Queue q,
           std::vector<std::vector<std::uint64_t>>* seen) -> Co<void> {
    co_await p.sync();
    for (const QMsg& qm : p.inbox(q))
      (*seen)[0].push_back(static_cast<std::uint64_t>(qm.src) * 1000 +
                           qm.w[0]);
    co_await p.sync();  // no traffic: inbox must be cleared
    for (const QMsg& qm : p.inbox(q))
      (*seen)[1].push_back(qm.w[0]);
  }(w.proc(0), q, &seen));
  for (int pid = 1; pid < 4; ++pid) {
    spawn([](Proc& p, Queue q) -> Co<void> {
      // Two messages each; delivery must group by src (ascending) and keep
      // send order within a src regardless of channel interleaving.
      p.send(0, q, {static_cast<std::uint64_t>(p.id()) * 10});
      p.send(0, q, {static_cast<std::uint64_t>(p.id()) * 10 + 1});
      co_await p.sync();
      co_await p.sync();
    }(w.proc(pid), q));
  }
  m.run();

  const std::vector<std::uint64_t> want = {1010, 1011, 2020, 2021, 3030, 3031};
  EXPECT_EQ(seen[0], want);
  EXPECT_TRUE(seen[1].empty());
}

// --- identical results on all five backends ---------------------------------

// A mixed put/get/send kernel whose final state is a pure function of the
// superstep protocol. Returns (per-pid var values, probe value, messages).
struct MixedOut {
  std::vector<std::uint64_t> vals;
  std::uint64_t probe = 0;
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
  std::uint64_t ticks = 0;
};

MixedOut run_mixed(Backend b) {
  Machine m(squeue::config_for(b));
  ChannelFactory f(m, b);
  World w(m, f, Topology::grid(2, 3), "mx", 32);
  const Var v = w.var();
  const Queue q = w.queue();
  const int n = w.nprocs();
  MixedOut out;

  for (int pid = 0; pid < n; ++pid) w.value(v, pid) = 1;
  const std::uint64_t ev0 = m.eq().executed();
  const Tick t0 = m.now();
  for (int pid = 0; pid < n; ++pid) {
    spawn([](Proc& p, Var v, Queue q, std::uint64_t* probe) -> Co<void> {
      for (int step = 0; step < 6; ++step) {
        co_await p.compute(4, 7);
        for (int d : p.world().neighbors_out(p.id()))
          p.send(d, q, {p.local(v) + static_cast<std::uint64_t>(step)});
        GetHandle h{};
        const bool probing = p.id() == 0 && step == 3;
        if (probing) h = p.get(1, v);
        co_await p.sync();
        if (probing) *probe = p.got(h);
        std::uint64_t acc = p.local(v);
        for (const QMsg& qm : p.inbox(q))
          acc += qm.w[0] * static_cast<std::uint64_t>(qm.src + 1);
        p.local(v) = acc % 100003;
      }
    }(w.proc(pid), v, q, &out.probe));
  }
  m.run();
  for (int pid = 0; pid < n; ++pid) out.vals.push_back(w.value(v, pid));
  out.messages = w.messages();
  out.events = m.eq().executed() - ev0;
  out.ticks = m.now() - t0;
  return out;
}

TEST(BspWorld, IdenticalResultsOnAllFiveBackends) {
  const MixedOut ref = run_mixed(Backend::kBlfq);
  ASSERT_EQ(ref.vals.size(), 6u);
  EXPECT_GT(ref.probe, 0u);
  for (Backend b : kAll) {
    const MixedOut o = run_mixed(b);
    EXPECT_EQ(o.vals, ref.vals) << backend_name(b);
    EXPECT_EQ(o.probe, ref.probe) << backend_name(b);
    EXPECT_EQ(o.messages, ref.messages) << backend_name(b);
  }
}

TEST(BspWorld, ByteIdenticalAcrossRunsPerBackend) {
  for (Backend b : kAll) {
    const MixedOut a = run_mixed(b);
    const MixedOut c = run_mixed(b);
    EXPECT_EQ(a.vals, c.vals) << backend_name(b);
    EXPECT_EQ(a.events, c.events) << backend_name(b);
    EXPECT_EQ(a.ticks, c.ticks) << backend_name(b);
  }
}

// --- the barrier parks: zero busy-poll events while waiting -----------------

TEST(BspWorld, WaitingAtSyncCostsNoEvents) {
  // ZMQ: every endpoint has a readiness futex, so a processor waiting at
  // sync() for a slow peer must be suspended — parked in the barrier or in
  // Selector::park_any — and contribute (near) zero events. The slow peer
  // computes 200k ticks; if anything busy-polled at even 1 probe per 100
  // ticks we would see thousands of events.
  Machine m(squeue::config_for(Backend::kZmq));
  ChannelFactory f(m, Backend::kZmq);
  Topology topo(2);
  topo.biconnect(0, 1);
  World w(m, f, topo, "t");
  const Var v = w.var();

  spawn([](Proc& p, Var v) -> Co<void> {
    p.put(1, v, 5);
    co_await p.sync();  // fast: arrives immediately, waits for the peer
  }(w.proc(0), v));
  spawn([](Proc& p) -> Co<void> {
    co_await p.thread().compute(200000);  // slow: long local phase
    co_await p.sync();
  }(w.proc(1)));
  m.run();

  EXPECT_EQ(w.value(v, 1), 5u);
  // Budget: spawn/compute/flush/barrier/drain events for 2 procs plus the
  // one message — far under 60; a poll loop would be thousands.
  EXPECT_LT(m.eq().executed(), 60u);
}

// --- compute hook charges simulated time ------------------------------------

TEST(BspWorld, ComputeHookChargesTicks) {
  Machine m(squeue::config_for(Backend::kBlfq));
  ChannelFactory f(m, Backend::kBlfq);
  Topology topo(2);
  topo.biconnect(0, 1);
  World w(m, f, topo, "t");

  const Tick t0 = m.now();
  spawn([](Proc& p) -> Co<void> {
    co_await p.compute(64, 3);  // 192 ticks of modelled kernel work
    co_await p.sync();
  }(w.proc(0)));
  spawn([](Proc& p) -> Co<void> { co_await p.sync(); }(w.proc(1)));
  m.run();

  EXPECT_EQ(w.compute_charged(), 192u);
  EXPECT_GE(m.now() - t0, 192u);  // the barrier waited for the work
}

// --- the graph is the quota-carve source of truth ---------------------------

TEST(BspWorld, DemandComesFromTopology) {
  Machine m(squeue::config_for(Backend::kVl));
  ChannelFactory f(m, Backend::kVl);
  World w(m, f, Topology::star(7), "t");
  EXPECT_EQ(w.channel_count(), 12u);  // 6 spokes, both directions
  EXPECT_EQ(w.demand().relay_channels, 12u);
  const auto q = runtime::size_quotas(m.cfg(), w.demand());
  EXPECT_GE(q.per_sqi_quota, 1u);
}

}  // namespace
}  // namespace vl::bsp
