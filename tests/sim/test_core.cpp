#include "sim/core.hpp"

#include <gtest/gtest.h>

#include "mem/hierarchy.hpp"
#include "sim/sync.hpp"

namespace vl::sim {
namespace {

struct CoreFixture : ::testing::Test {
  EventQueue eq;
  CacheConfig ccfg;
  mem::Hierarchy hier{eq, 2, ccfg};
  CoreConfig cfg;
  Core core0{eq, 0, hier, cfg};
  Core core1{eq, 1, hier, cfg};
};

TEST_F(CoreFixture, StoreThenLoadRoundTrips) {
  SimThread t = core0.make_thread();
  std::uint64_t got = 0;
  spawn([](SimThread th, std::uint64_t* out) -> Co<void> {
    co_await th.store(0x1000, 0xdeadbeefcafe, 8);
    *out = co_await th.load(0x1000, 8);
  }(t, &got));
  eq.run();
  EXPECT_EQ(got, 0xdeadbeefcafeull);
}

TEST_F(CoreFixture, SubWordAccessesRespectSize) {
  SimThread t = core0.make_thread();
  std::uint64_t got = 0;
  spawn([](SimThread th, std::uint64_t* out) -> Co<void> {
    co_await th.store(0x2000, 0x11223344aabbccdd, 8);
    *out = co_await th.load(0x2002, 2);  // bytes 2..3 little-endian
  }(t, &got));
  eq.run();
  EXPECT_EQ(got, 0xaabbu);
}

TEST_F(CoreFixture, CasSucceedsOnceUnderContention) {
  SimThread a = core0.make_thread();
  SimThread b = core1.make_thread();
  int successes = 0;
  auto contender = [](SimThread th, int* succ) -> Co<void> {
    bool ok = co_await th.cas64(0x3000, 0, 1);
    if (ok) ++*succ;
  };
  spawn(contender(a, &successes));
  spawn(contender(b, &successes));
  eq.run();
  EXPECT_EQ(successes, 1);
}

TEST_F(CoreFixture, FetchAddIsAtomicAcrossCores) {
  SimThread a = core0.make_thread();
  SimThread b = core1.make_thread();
  auto adder = [](SimThread th) -> Co<void> {
    for (int i = 0; i < 100; ++i) co_await th.fetch_add64(0x4000, 1);
  };
  spawn(adder(a));
  spawn(adder(b));
  eq.run();
  EXPECT_EQ(hier.backing().read(0x4000, 8), 200u);
}

TEST_F(CoreFixture, SwapReturnsOldValue) {
  SimThread t = core0.make_thread();
  std::uint64_t old = 99;
  spawn([](SimThread th, std::uint64_t* o) -> Co<void> {
    co_await th.store(0x5000, 7, 8);
    *o = co_await th.swap64(0x5000, 13);
  }(t, &old));
  eq.run();
  EXPECT_EQ(old, 7u);
  EXPECT_EQ(hier.backing().read(0x5000, 8), 13u);
}

TEST_F(CoreFixture, LineOpsMoveWholeLines) {
  SimThread t = core0.make_thread();
  std::array<std::uint8_t, 64> in{}, out{};
  for (int i = 0; i < 64; ++i) in[i] = static_cast<std::uint8_t>(i * 3);
  spawn([](SimThread th, void* src, void* dst) -> Co<void> {
    co_await th.store_line(0x6000, src);
    co_await th.load_line(0x6000, dst);
  }(t, in.data(), out.data()));
  eq.run();
  EXPECT_EQ(in, out);
}

TEST_F(CoreFixture, ComputeAdvancesTime) {
  SimThread t = core0.make_thread();
  spawn([](SimThread th) -> Co<void> { co_await th.compute(123); }(t));
  eq.run();
  EXPECT_EQ(eq.now(), 123u);
}

TEST_F(CoreFixture, TwoThreadsOnOneCoreSerializeAndPayCtxSwitch) {
  SimThread t0 = core0.make_thread();
  SimThread t1 = core0.make_thread();
  auto worker = [](SimThread th) -> Co<void> {
    for (int i = 0; i < 3; ++i) co_await th.compute(10);
  };
  spawn(worker(t0));
  spawn(worker(t1));
  eq.run();
  // 6 compute blocks of 10 plus at least one context switch.
  EXPECT_GE(eq.now(), 60u + core0.cfg().ctx_switch_cost);
  EXPECT_GE(core0.ctx_switches(), 1u);
}

TEST_F(CoreFixture, CtxSwitchHookFires) {
  SimThread t0 = core0.make_thread();
  SimThread t1 = core0.make_thread();
  std::vector<std::pair<int, int>> switches;
  core0.add_ctx_switch_hook(
      [&](int o, int n) { switches.emplace_back(o, n); });
  spawn([](SimThread th) -> Co<void> { co_await th.compute(5); }(t0));
  spawn([](SimThread th) -> Co<void> { co_await th.compute(5); }(t1));
  eq.run();
  ASSERT_FALSE(switches.empty());
  EXPECT_EQ(switches[0], (std::pair<int, int>{0, 1}));
}

TEST_F(CoreFixture, SingleThreadNeverContextSwitches) {
  SimThread t = core0.make_thread();
  spawn([](SimThread th) -> Co<void> {
    for (int i = 0; i < 10; ++i) {
      co_await th.compute(1);
      co_await th.store(0x7000, i, 8);
    }
  }(t));
  eq.run();
  EXPECT_EQ(core0.ctx_switches(), 0u);
}

TEST_F(CoreFixture, ParkedThreadDonatesResidencyImmediately) {
  // Yield-on-block: t0 parks on a WaitQueue; t1 (same core) must get the
  // core right away — paying only the context-switch cost, not waiting out
  // t0's scheduling quantum (5000 ticks by default).
  SimThread t0 = core0.make_thread();
  SimThread t1 = core0.make_thread();
  WaitQueue wq(eq);
  Tick t1_done = 0;
  spawn([](SimThread th, WaitQueue& wq) -> Co<void> {
    co_await th.compute(10);
    co_await th.park(wq, wq.epoch());  // blocks "forever"
  }(t0, wq));
  spawn([](SimThread th, Tick* done) -> Co<void> {
    co_await th.compute(10);
    *done = th.core->eq().now();
  }(t1, &t1_done));
  eq.run();
  EXPECT_GT(core0.yields(), 0u);
  EXPECT_GE(core0.ctx_switches(), 1u);  // the donation still swaps state
  // t0 computes 10, parks; switch (1000) + t1's compute (10) ≈ 1020 —
  // far below the 5000-tick quantum the old scheduler would have waited.
  EXPECT_LT(t1_done, core0.cfg().sched_quantum);
  wq.wake_all();  // unpark t0 so the queue drains cleanly
  eq.run();
}

TEST_F(CoreFixture, WokenThreadReacquiresTheCoreAndContinues) {
  SimThread t0 = core0.make_thread();
  SimThread t1 = core0.make_thread();
  WaitQueue wq(eq);
  std::uint64_t got = 0;
  spawn([](SimThread th, WaitQueue& wq, std::uint64_t* out) -> Co<void> {
    co_await th.store(0x8000, 41, 8);
    co_await th.park(wq, wq.epoch());
    // Woken: must transparently re-acquire the issue port past t1.
    const std::uint64_t v = co_await th.load(0x8000, 8);
    co_await th.store(0x8000, v + 1, 8);
    *out = v + 1;
  }(t0, wq, &got));
  spawn([](SimThread th, WaitQueue& wq) -> Co<void> {
    co_await th.compute(500);
    wq.wake_one();
    co_await th.compute(500);
  }(t1, wq));
  eq.run();
  EXPECT_EQ(got, 42u);
  EXPECT_EQ(hier.backing().read(0x8000, 8), 42u);
}

}  // namespace
}  // namespace vl::sim
