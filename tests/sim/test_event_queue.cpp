#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

namespace vl::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(30, [&] { order.push_back(3); });
  eq.schedule_at(10, [&] { order.push_back(1); });
  eq.schedule_at(20, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) eq.schedule_at(5, [&, i] { order.push_back(i); });
  eq.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue eq;
  Tick seen = 0;
  eq.schedule_at(100, [&] {
    eq.schedule_in(5, [&] { seen = eq.now(); });
  });
  eq.run();
  EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, EventsCanCascade) {
  EventQueue eq;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 100) eq.schedule_in(1, recur);
  };
  eq.schedule_in(1, recur);
  eq.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue eq;
  int fired = 0;
  eq.schedule_at(10, [&] { ++fired; });
  eq.schedule_at(20, [&] { ++fired; });
  eq.schedule_at(30, [&] { ++fired; });
  eq.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eq.now(), 20u);
  eq.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunWithLimit) {
  EventQueue eq;
  int fired = 0;
  for (int i = 0; i < 5; ++i) eq.schedule_at(i + 1, [&] { ++fired; });
  EXPECT_EQ(eq.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(eq.pending(), 2u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenEmpty) {
  EventQueue eq;
  eq.run_until(500);
  EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, ExecutedCounts) {
  EventQueue eq;
  for (int i = 0; i < 7; ++i) eq.schedule_at(i + 1, [] {});
  EXPECT_EQ(eq.executed(), 0u);
  eq.run();
  EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, FarFutureEventsInterleaveWithNearOnes) {
  // Events far beyond the calendar-ring horizon (8192 ticks) take the
  // far-heap path; ordering across both paths must stay by (tick, seq).
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(100'000, [&] { order.push_back(3); });  // far
  eq.schedule_at(10, [&] { order.push_back(1); });       // near
  eq.schedule_at(50'000, [&] { order.push_back(2); });   // far
  eq.schedule_at(100'001, [&] { order.push_back(4); });  // far
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(eq.now(), 100'001u);
}

TEST(EventQueue, FarAndNearEventsOnTheSameTickMergeBySeq) {
  // Schedule A for tick 10000 while it is far (beyond the horizon), then
  // advance so 10000 is near and schedule B for the same tick. A was
  // scheduled first, so it must fire first.
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(10'000, [&] { order.push_back(1) ; });  // far at now=0
  eq.schedule_at(5'000, [&] {
    eq.schedule_at(10'000, [&] { order.push_back(2); });  // near at now=5000
  });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, MatchesReferenceModelUnderRandomLoad) {
  // Deterministic pseudo-random schedule (offsets straddling the ring
  // horizon, same-tick collisions, nested rescheduling) replayed against a
  // naive (tick, seq) sort — the kernel's firing order must match exactly.
  EventQueue eq;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> expected;  // (when,id)
  std::vector<std::uint64_t> fired;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::uint64_t id = 0;
  std::function<void(int)> add = [&](int depth) {
    // Offsets: mostly short, some far past the 8192-tick horizon.
    const std::uint64_t off = next() % 3 == 0 ? next() % 40'000 : next() % 64;
    const Tick when = eq.now() + off;
    const std::uint64_t my_id = id++;
    expected.emplace_back(when, my_id);
    eq.schedule_at(when, [&, my_id, depth] {
      fired.push_back(my_id);
      if (depth > 0 && next() % 2) add(depth - 1);  // nested reschedule
    });
  };
  for (int i = 0; i < 400; ++i) add(2);
  eq.run();

  ASSERT_EQ(fired.size(), expected.size());
  // expected is in id (= seq) order; a stable sort by tick yields the
  // required (tick, seq) execution order.
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < fired.size(); ++i)
    ASSERT_EQ(fired[i], expected[i].second) << "at event " << i;
}

}  // namespace
}  // namespace vl::sim
