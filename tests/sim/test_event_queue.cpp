#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vl::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(30, [&] { order.push_back(3); });
  eq.schedule_at(10, [&] { order.push_back(1); });
  eq.schedule_at(20, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) eq.schedule_at(5, [&, i] { order.push_back(i); });
  eq.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue eq;
  Tick seen = 0;
  eq.schedule_at(100, [&] {
    eq.schedule_in(5, [&] { seen = eq.now(); });
  });
  eq.run();
  EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, EventsCanCascade) {
  EventQueue eq;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 100) eq.schedule_in(1, recur);
  };
  eq.schedule_in(1, recur);
  eq.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue eq;
  int fired = 0;
  eq.schedule_at(10, [&] { ++fired; });
  eq.schedule_at(20, [&] { ++fired; });
  eq.schedule_at(30, [&] { ++fired; });
  eq.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eq.now(), 20u);
  eq.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunWithLimit) {
  EventQueue eq;
  int fired = 0;
  for (int i = 0; i < 5; ++i) eq.schedule_at(i + 1, [&] { ++fired; });
  EXPECT_EQ(eq.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(eq.pending(), 2u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenEmpty) {
  EventQueue eq;
  eq.run_until(500);
  EXPECT_EQ(eq.now(), 500u);
}

}  // namespace
}  // namespace vl::sim
