// Awaitable synchronization primitive tests: barrier phase semantics,
// semaphore FIFO handoff and bounding, event broadcast including
// late-arriving waiters, and the WaitQueue simulated futex (FIFO wake
// order, epoch-closed lost-wakeup window, concurrent park/wake).

#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/task.hpp"

namespace vl::sim {
namespace {

TEST(Barrier, ReleasesAllPartiesTogether) {
  EventQueue eq;
  Barrier bar(eq, 3);
  int passed = 0;
  for (int i = 0; i < 3; ++i) {
    spawn([](EventQueue& eq, Barrier& b, int delay, int* passed) -> Co<void> {
      co_await Delay(eq, static_cast<Tick>(delay));
      co_await b.arrive();
      ++*passed;
    }(eq, bar, 10 * (i + 1), &passed));
  }
  eq.run_until(29);
  EXPECT_EQ(passed, 0);  // two waiting, third not arrived yet
  eq.run();
  EXPECT_EQ(passed, 3);
  EXPECT_EQ(bar.generations(), 1u);
}

TEST(Barrier, ReusableAcrossPhases) {
  EventQueue eq;
  Barrier bar(eq, 2);
  std::vector<int> order;
  for (int id = 0; id < 2; ++id) {
    spawn([](EventQueue& eq, Barrier& b, int id,
             std::vector<int>* order) -> Co<void> {
      for (int phase = 0; phase < 3; ++phase) {
        co_await Delay(eq, static_cast<Tick>(id == 0 ? 5 : 11));
        co_await b.arrive();
        order->push_back(phase * 10 + id);
      }
    }(eq, bar, id, &order));
  }
  eq.run();
  EXPECT_EQ(bar.generations(), 3u);
  ASSERT_EQ(order.size(), 6u);
  // Phases strictly ordered: all phase-k entries precede phase-k+1.
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(order[i - 1] / 10, order[i] / 10);
}

TEST(Barrier, LastArriverDoesNotSuspend) {
  EventQueue eq;
  Barrier bar(eq, 1);  // single party: arrive always passes through
  bool done = false;
  spawn([](Barrier& b, bool* done) -> Co<void> {
    co_await b.arrive();
    co_await b.arrive();
    *done = true;
  }(bar, &done));
  eq.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(bar.generations(), 2u);
}

TEST(Semaphore, BoundsConcurrency) {
  EventQueue eq;
  Semaphore sem(eq, 2);
  int in_flight = 0, max_in_flight = 0, completed = 0;
  for (int i = 0; i < 6; ++i) {
    spawn([](EventQueue& eq, Semaphore& s, int* in, int* maxin,
             int* done) -> Co<void> {
      co_await s.acquire();
      ++*in;
      *maxin = std::max(*maxin, *in);
      co_await Delay(eq, 50);
      --*in;
      ++*done;
      s.release();
    }(eq, sem, &in_flight, &max_in_flight, &completed));
  }
  eq.run();
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(max_in_flight, 2);
  EXPECT_EQ(sem.count(), 2u);
}

TEST(Semaphore, FifoHandoff) {
  EventQueue eq;
  Semaphore sem(eq, 0);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    spawn([](Semaphore& s, int id, std::vector<int>* order) -> Co<void> {
      co_await s.acquire();
      order->push_back(id);
    }(sem, i, &order));
  }
  eq.run();
  EXPECT_TRUE(order.empty());  // nothing released yet
  EXPECT_EQ(sem.queue_length(), 3u);
  for (int i = 0; i < 3; ++i) sem.release();
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sem.count(), 0u);  // permits handed to waiters, never pooled
}

TEST(Event, BroadcastsToAllWaiters) {
  EventQueue eq;
  Event ev(eq);
  int released = 0;
  for (int i = 0; i < 4; ++i) {
    spawn([](Event& e, int* released) -> Co<void> {
      co_await e.wait();
      ++*released;
    }(ev, &released));
  }
  eq.run();
  EXPECT_EQ(released, 0);
  ev.set();
  eq.run();
  EXPECT_EQ(released, 4);
}

TEST(Event, LateWaiterPassesThrough) {
  EventQueue eq;
  Event ev(eq);
  ev.set();
  ev.set();  // idempotent
  bool done = false;
  spawn([](Event& e, bool* done) -> Co<void> {
    co_await e.wait();
    *done = true;
  }(ev, &done));
  eq.run();
  EXPECT_TRUE(done);
}

TEST(Event, StartGunAlignsThreads) {
  // The common harness idiom: spawn threads that all block on the event,
  // then set() it — every thread observes the same start tick.
  EventQueue eq;
  Event go(eq);
  std::vector<Tick> starts;
  for (int i = 0; i < 3; ++i) {
    spawn([](EventQueue& eq, Event& go, std::vector<Tick>* starts,
             int id) -> Co<void> {
      co_await Delay(eq, static_cast<Tick>(id * 7));  // stagger arrivals
      co_await go.wait();
      starts->push_back(eq.now());
    }(eq, go, &starts, i));
  }
  eq.run_until(100);
  go.set();
  eq.run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], starts[1]);
  EXPECT_EQ(starts[1], starts[2]);
}

TEST(WaitQueue, WakeOneReleasesInFifoOrder) {
  EventQueue eq;
  WaitQueue wq(eq);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    spawn([](WaitQueue& wq, int id, std::vector<int>* order) -> Co<void> {
      co_await wq.park(wq.epoch());
      order->push_back(id);
    }(wq, i, &order));
  }
  eq.run();
  EXPECT_EQ(wq.parked(), 3u);
  wq.wake_one();
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  wq.wake_one();
  wq.wake_one();
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(wq.parked(), 0u);
  EXPECT_EQ(wq.wakeups(), 3u);
}

TEST(WaitQueue, WakeAllReleasesEveryoneInFifoOrder) {
  EventQueue eq;
  WaitQueue wq(eq);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    spawn([](WaitQueue& wq, int id, std::vector<int>* order) -> Co<void> {
      co_await wq.park(wq.epoch());
      order->push_back(id);
    }(wq, i, &order));
  }
  eq.run();
  wq.wake_all();
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WaitQueue, EpochClosesTheLostWakeupWindow) {
  // The futex race: a thread samples the epoch, decides to sleep, and the
  // wake lands before it actually parks. The stale epoch must turn the
  // park into a no-op instead of a lost wakeup.
  EventQueue eq;
  WaitQueue wq(eq);
  bool done = false;
  const std::uint64_t gate = wq.epoch();
  wq.wake_one();  // nobody parked: epoch still advances
  spawn([](WaitQueue& wq, std::uint64_t gate, bool* done) -> Co<void> {
    co_await wq.park(gate);  // must fall straight through
    *done = true;
  }(wq, gate, &done));
  eq.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(wq.parked(), 0u);
}

TEST(WaitQueue, NoLostWakeupsUnderConcurrentParkWake) {
  // Producer/consumer over a plain counter with the canonical re-check
  // loop: every produced item must be consumed even though wakes and parks
  // interleave at the same ticks. A lost wakeup would strand a consumer
  // (and items) forever and fail the totals below.
  EventQueue eq;
  WaitQueue wq(eq);
  int items = 0, consumed = 0;
  constexpr int kItems = 200, kConsumers = 4;

  for (int c = 0; c < kConsumers; ++c) {
    spawn([](WaitQueue& wq, int* items, int* consumed) -> Co<void> {
      for (;;) {
        while (*items == 0) {
          const std::uint64_t gate = wq.epoch();
          if (*items != 0) break;
          co_await wq.park(gate);
        }
        if (*items < 0) co_return;  // shutdown sentinel
        --*items;
        ++*consumed;
      }
    }(wq, &items, &consumed));
  }
  spawn([](EventQueue& eq, WaitQueue& wq, int* items) -> Co<void> {
    for (int i = 0; i < kItems; ++i) {
      if (i % 3) co_await Delay(eq, 1 + i % 7);
      ++*items;
      wq.wake_one();
    }
    co_await Delay(eq, 100);
    *items = -1;  // shut consumers down
    wq.wake_all();
  }(eq, wq, &items));
  eq.run();
  EXPECT_EQ(consumed, kItems);
  EXPECT_EQ(wq.parked(), 0u);
}

// --- ParkAny (multi-futex park, the Selector's sim layer) --------------------

TEST(ParkAny, ResumesOnFirstWakeAndReportsWinner) {
  EventQueue eq;
  WaitQueue a(eq), b(eq), c(eq);
  WaitQueue* wqs[] = {&a, &b, &c};
  std::size_t winner = 99;
  spawn([](WaitQueue* const* wqs, std::size_t* winner) -> Co<void> {
    const std::uint64_t gates[] = {wqs[0]->epoch(), wqs[1]->epoch(),
                                   wqs[2]->epoch()};
    *winner = co_await ParkAny(std::span<WaitQueue* const>(wqs, 3),
                               std::span<const std::uint64_t>(gates, 3));
  }(wqs, &winner));
  EXPECT_EQ(winner, 99u);  // parked on all three
  EXPECT_EQ(a.parked(), 1u);
  EXPECT_EQ(b.parked(), 1u);
  EXPECT_EQ(c.parked(), 1u);
  b.wake_one();
  eq.run();
  EXPECT_EQ(winner, 1u);
  // Stale sibling entries were unlinked on resume.
  EXPECT_EQ(a.parked(), 0u);
  EXPECT_EQ(c.parked(), 0u);
}

TEST(ParkAny, StaleEntryDoesNotConsumeASiblingWake) {
  EventQueue eq;
  WaitQueue a(eq), b(eq);
  WaitQueue* wqs[] = {&a, &b};
  std::size_t winner = 99;
  bool single_woke = false;
  spawn([](WaitQueue* const* wqs, std::size_t* winner) -> Co<void> {
    const std::uint64_t gates[] = {wqs[0]->epoch(), wqs[1]->epoch()};
    *winner = co_await ParkAny(std::span<WaitQueue* const>(wqs, 2),
                               std::span<const std::uint64_t>(gates, 2));
  }(wqs, &winner));
  spawn([](WaitQueue& b, bool* woke) -> Co<void> {
    const std::uint64_t gate = b.epoch();
    co_await b.park(gate);
    *woke = true;
  }(b, &single_woke));
  // Wake the group through `a`, then wake `b` before the group's resume
  // has run: the group's now-stale entry sits at the front of b's FIFO
  // and must be skipped WITHOUT swallowing the wake that belongs to the
  // plain waiter behind it.
  a.wake_one();
  b.wake_one();
  eq.run();
  EXPECT_EQ(winner, 0u);
  EXPECT_TRUE(single_woke);
}

TEST(ParkAny, MovedEpochFallsStraightThrough) {
  EventQueue eq;
  WaitQueue a(eq), b(eq);
  WaitQueue* wqs[] = {&a, &b};
  const std::uint64_t gates[] = {a.epoch(), b.epoch()};
  b.wake_one();  // epoch moves before the park
  std::size_t winner = 99;
  spawn([](WaitQueue* const* wqs, const std::uint64_t* gates,
           std::size_t* winner) -> Co<void> {
    *winner = co_await ParkAny(std::span<WaitQueue* const>(wqs, 2),
                               std::span<const std::uint64_t>(gates, 2));
  }(wqs, gates, &winner));
  EXPECT_EQ(winner, 1u);  // no suspension at all
  EXPECT_EQ(a.parked(), 0u);
}

// --- CreditGate (FIFO multi-acquire wake channel) ---------------------------

TEST(CreditGate, FrontWaiterAccumulatesItsWholeWant) {
  EventQueue eq;
  CreditGate g(eq);
  std::vector<int> order;
  spawn([](CreditGate& g, std::vector<int>* order) -> Co<void> {
    co_await g.acquire(4);  // front: wants a whole burst
    order->push_back(4);
  }(g, &order));
  spawn([](CreditGate& g, std::vector<int>* order) -> Co<void> {
    co_await g.acquire(1);  // behind: must not starve the front
    order->push_back(1);
  }(g, &order));
  for (int i = 0; i < 3; ++i) {
    g.release(1);
    eq.run();
    EXPECT_TRUE(order.empty());  // front still short of its want
  }
  g.release(1);
  eq.run();
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 4);  // one wake carried the whole 4-slot grant
  g.release(1);
  eq.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(g.credits(), 0u);
}

TEST(CreditGate, CreditsPersistAcrossTheCheckParkWindow) {
  EventQueue eq;
  CreditGate g(eq);
  g.release(2);  // released before anyone waits: no lost wake possible
  bool got = false;
  spawn([](CreditGate& g, bool* got) -> Co<void> {
    co_await g.acquire(2);
    *got = true;
  }(g, &got));
  eq.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(g.credits(), 0u);
}

TEST(CreditGate, ReturnedCreditsServeTheNextWaiter) {
  EventQueue eq;
  CreditGate g(eq);
  int first = 0, second = 0;
  spawn([](CreditGate& g, int* first) -> Co<void> {
    co_await g.acquire(2);
    *first = 1;
    g.release(2);  // could not use the slots (quota NACK): hand them back
  }(g, &first));
  spawn([](CreditGate& g, int* second) -> Co<void> {
    co_await g.acquire(2);
    *second = 1;
  }(g, &second));
  g.release(2);
  eq.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(CreditGate, KickAllResumesWithoutDebiting) {
  EventQueue eq;
  CreditGate g(eq);
  int resumed = 0;
  for (int i = 0; i < 3; ++i) {
    spawn([](CreditGate& g, int* resumed) -> Co<void> {
      co_await g.acquire(5);
      ++*resumed;
    }(g, &resumed));
  }
  g.release(1);
  eq.run();
  EXPECT_EQ(resumed, 0);
  g.kick_all();
  eq.run();
  EXPECT_EQ(resumed, 3);
  EXPECT_EQ(g.credits(), 1u);  // the lone credit was never debited
}

}  // namespace
}  // namespace vl::sim
