#include "sim/task.hpp"

#include <gtest/gtest.h>

#include "sim/async_mutex.hpp"

namespace vl::sim {
namespace {

Co<int> value_co(int x) { co_return x; }

Co<int> nested(int x) {
  int a = co_await value_co(x);
  int b = co_await value_co(a + 1);
  co_return a + b;
}

TEST(Task, NestedCoReturnsValues) {
  EventQueue eq;
  int result = 0;
  spawn([](int* out) -> Co<void> {
    *out = co_await nested(10);  // 10 + 11
  }(&result));
  eq.run();
  EXPECT_EQ(result, 21);
}

TEST(Task, SpawnRunsEagerlyUntilFirstSuspend) {
  EventQueue eq;
  int stage = 0;
  Spawned s = spawn([](EventQueue& q, int* st) -> Co<void> {
    *st = 1;
    co_await Delay(q, 10);
    *st = 2;
  }(eq, &stage));
  EXPECT_EQ(stage, 1);  // ran to the Delay synchronously
  EXPECT_FALSE(s.done());
  eq.run();
  EXPECT_EQ(stage, 2);
  EXPECT_TRUE(s.done());
  EXPECT_EQ(eq.now(), 10u);
}

TEST(Task, DelaysAccumulateSequentially) {
  EventQueue eq;
  Tick end = 0;
  spawn([](EventQueue& q, Tick* e) -> Co<void> {
    co_await Delay(q, 5);
    co_await Delay(q, 7);
    co_await Delay(q, 0);  // zero delay is ready immediately
    *e = q.now();
  }(eq, &end));
  eq.run();
  EXPECT_EQ(end, 12u);
}

TEST(Task, ManyConcurrentCoroutinesInterleave) {
  EventQueue eq;
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    spawn([](EventQueue& q, int delay, int* d) -> Co<void> {
      co_await Delay(q, delay);
      ++*d;
    }(eq, i + 1, &done));
  }
  eq.run();
  EXPECT_EQ(done, 100);
  EXPECT_EQ(eq.now(), 100u);
}

TEST(Task, AsyncOpBridgesCallbacks) {
  EventQueue eq;
  std::uint64_t got = 0;
  spawn([](EventQueue& q, std::uint64_t* out) -> Co<void> {
    AsyncOp<std::uint64_t> op;
    q.schedule_in(42, [&op] { op.complete(7); });
    *out = co_await op;
    EXPECT_EQ(q.now(), 42u);
  }(eq, &got));
  eq.run();
  EXPECT_EQ(got, 7u);
}

TEST(Task, AsyncOpCompletedBeforeAwaitIsReady) {
  EventQueue eq;
  int got = 0;
  spawn([](int* out) -> Co<void> {
    AsyncOp<int> op;
    op.complete(5);
    *out = co_await op;  // must not suspend
  }(&got));
  EXPECT_EQ(got, 5);
}

TEST(AsyncMutex, MutualExclusionAndFifo) {
  EventQueue eq;
  AsyncMutex m(eq);
  std::vector<int> order;
  auto worker = [](EventQueue& q, AsyncMutex& mu, std::vector<int>& ord,
                   int id) -> Co<void> {
    co_await mu.lock();
    ord.push_back(id);
    co_await Delay(q, 10);
    ord.push_back(id);
    mu.unlock();
  };
  for (int i = 0; i < 3; ++i) spawn(worker(eq, m, order, i));
  eq.run();
  // Each worker's two entries must be adjacent (no interleaving) and FIFO.
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order, (std::vector<int>{0, 0, 1, 1, 2, 2}));
  EXPECT_FALSE(m.locked());
}

TEST(AsyncMutex, UncontendedLockIsImmediate) {
  EventQueue eq;
  AsyncMutex m(eq);
  bool entered = false;
  spawn([](AsyncMutex& mu, bool* e) -> Co<void> {
    co_await mu.lock();
    *e = true;
    mu.unlock();
  }(m, &entered));
  EXPECT_TRUE(entered);  // no suspension needed
}

}  // namespace
}  // namespace vl::sim
