// FaultSpec grammar coverage: clause parsing, window semantics, the
// summary() round-trip, deterministic rand: expansion, and the
// position-annotated rejection of malformed input.

#include "fault/spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vl::fault {
namespace {

TEST(FaultSpec, ParsesEveryClauseKind) {
  const FaultSpec s = FaultSpec::parse(
      "spike@100+50:extra=7,src=1,dst=2;"
      "partition@200+30:src=0,dst=3;"
      "stall@400+25:shard=1;"
      "loss@500+100:every=4,shard=0;"
      "dup@700+10:every=3;"
      "flash@900+60:factor=0.25,class=2");
  ASSERT_EQ(s.events.size(), 6u);

  const FaultEvent& spike = s.events[0];
  EXPECT_EQ(spike.kind, FaultKind::kLinkSpike);
  EXPECT_EQ(spike.start, 100u);
  EXPECT_EQ(spike.duration, 50u);
  EXPECT_EQ(spike.extra, 7u);
  EXPECT_EQ(spike.src, 1);
  EXPECT_EQ(spike.dst, 2);

  EXPECT_EQ(s.events[1].kind, FaultKind::kPartition);
  EXPECT_EQ(s.events[2].kind, FaultKind::kDeviceStall);
  EXPECT_EQ(s.events[2].shard, 1);
  EXPECT_EQ(s.events[3].kind, FaultKind::kChanLoss);
  EXPECT_EQ(s.events[3].every, 4u);
  EXPECT_EQ(s.events[4].kind, FaultKind::kChanDup);
  EXPECT_EQ(s.events[5].kind, FaultKind::kFlashCrowd);
  EXPECT_DOUBLE_EQ(s.events[5].factor, 0.25);
  EXPECT_EQ(s.events[5].cls, 2);

  EXPECT_TRUE(s.has(FaultKind::kLinkSpike));
  EXPECT_TRUE(s.has(FaultKind::kFlashCrowd));
}

TEST(FaultSpec, ActiveWindowIsClosedOpen) {
  const FaultSpec s = FaultSpec::parse("stall@100+50");
  const FaultEvent& e = s.events.at(0);
  EXPECT_FALSE(e.active_at(99));
  EXPECT_TRUE(e.active_at(100));
  EXPECT_TRUE(e.active_at(149));
  EXPECT_FALSE(e.active_at(150));
  EXPECT_EQ(s.end_tick(), 150u);
  EXPECT_EQ(FaultSpec{}.end_tick(), 0u);
}

TEST(FaultSpec, SummaryRoundTripsThroughParse) {
  const FaultSpec a = FaultSpec::parse(
      "spike@100+50:extra=7,src=1;stall@400+25;"
      "loss@500+100:every=4;flash@900+60:factor=0.5");
  const FaultSpec b = FaultSpec::parse(a.summary());
  EXPECT_EQ(a.summary(), b.summary());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].start, b.events[i].start);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
  }
}

TEST(FaultSpec, RandomExpansionIsDeterministic) {
  const FaultSpec a = FaultSpec::random(7);
  const FaultSpec b = FaultSpec::random(7);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_FALSE(a.empty());

  const FaultSpec c = FaultSpec::random(8);
  EXPECT_NE(a.summary(), c.summary());  // the seed matters

  // A rand: clause is expanded at parse time into the same schedule —
  // the expansion is part of the spec's value.
  EXPECT_EQ(FaultSpec::parse("rand:7").summary(), a.summary());
  EXPECT_EQ(FaultSpec::parse("rand:7,4,100000").events.size(), 4u);
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(FaultSpec::parse("nonsense@1+2"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("stall@"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("stall@100"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("spike@1+2"), std::invalid_argument);  // extra
  EXPECT_THROW(FaultSpec::parse("loss@1+2"), std::invalid_argument);   // every
  EXPECT_THROW(FaultSpec::parse("stall@1+2:bogus=3"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("flash@1+2:factor=x"), std::invalid_argument);
}

}  // namespace
}  // namespace vl::fault
