// Fault-plane behaviour through the real engines: byte-identical chaos
// replay, zero-loss stall windows, channel loss/dup conservation on
// software backends (and their gating off hardware backends), flash-crowd
// load mutation, and sharded link faults staying deterministic across
// sequential-vs-threaded stepping.

#include "fault/plane.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "traffic/engine.hpp"
#include "traffic/scenario.hpp"
#include "traffic/sharded_engine.hpp"

namespace vl::fault {
namespace {

using squeue::Backend;
using traffic::EngineResult;
using traffic::ScenarioSpec;
using traffic::ShardedOptions;
using traffic::find_scenario;
using traffic::run_spec;

ScenarioSpec with_faults(const char* scenario, const char* faults) {
  ScenarioSpec s = *find_scenario(scenario);
  s.faults = FaultSpec::parse(faults);
  return s;
}

std::uint64_t total(const traffic::ScenarioMetrics& m,
                    std::uint64_t traffic::TenantMetrics::*field) {
  std::uint64_t sum = 0;
  for (const auto& t : m.tenants) sum += t.*field;
  return sum;
}

TEST(FaultPlane, FaultRunIsByteIdenticalAcrossRepeats) {
  const ScenarioSpec s = with_faults(
      "incast-burst", "stall@20000+15000;flash@10000+30000:factor=0.5");
  const EngineResult a = run_spec(s, Backend::kVl, 42);
  const EngineResult b = run_spec(s, Backend::kVl, 42);
  EXPECT_EQ(a.csv(), b.csv());
  EXPECT_EQ(a.events, b.events);
}

TEST(FaultPlane, DeviceStallLosesNothingAndStretchesTheRun) {
  const ScenarioSpec plain = *find_scenario("incast-burst");
  const ScenarioSpec stalled =
      with_faults("incast-burst", "stall@20000+40000:every=1");
  const EngineResult base = run_spec(plain, Backend::kVl, 42);
  const EngineResult r = run_spec(stalled, Backend::kVl, 42);

  // A stall is a pure latency event: producers back-pressure through the
  // normal NACK/park paths, so conservation is exact.
  EXPECT_EQ(total(r.metrics, &traffic::TenantMetrics::delivered),
            total(r.metrics, &traffic::TenantMetrics::generated));
  EXPECT_EQ(total(r.metrics, &traffic::TenantMetrics::dropped), 0u);
  EXPECT_EQ(total(r.metrics, &traffic::TenantMetrics::delivered),
            total(base.metrics, &traffic::TenantMetrics::delivered));
  // ...but the window must actually have bitten.
  EXPECT_GT(r.metrics.ticks, base.metrics.ticks);
}

TEST(FaultPlane, ChanLossShedsAndConserves) {
  const ScenarioSpec s =
      with_faults("incast-burst", "loss@0+10000000:every=4");
  const EngineResult r = run_spec(s, Backend::kBlfq, 42);
  const std::uint64_t gen = total(r.metrics, &traffic::TenantMetrics::generated);
  const std::uint64_t del = total(r.metrics, &traffic::TenantMetrics::delivered);
  const std::uint64_t drop = total(r.metrics, &traffic::TenantMetrics::dropped);
  EXPECT_GT(drop, 0u);
  EXPECT_EQ(del + drop, gen);  // every generated message is accounted for
}

TEST(FaultPlane, ChanDupDeliversExtraCopies) {
  const ScenarioSpec s = with_faults("incast-burst", "dup@0+10000000:every=4");
  const EngineResult r = run_spec(s, Backend::kBlfq, 42);
  const std::uint64_t gen = total(r.metrics, &traffic::TenantMetrics::generated);
  const std::uint64_t del = total(r.metrics, &traffic::TenantMetrics::delivered);
  EXPECT_GT(del, gen);  // duplicates arrive as real deliveries
  EXPECT_EQ(total(r.metrics, &traffic::TenantMetrics::dropped), 0u);
}

TEST(FaultPlane, ChannelFaultsGateOffHardwareBackends) {
  // loss/dup model software transport faults; the VL hardware path has no
  // such boundary, so the same spec must leave a VL run untouched.
  const ScenarioSpec s = with_faults("incast-burst", "loss@0+10000000:every=4");
  const EngineResult faulted = run_spec(s, Backend::kVl, 42);
  const EngineResult plain = run_spec(*find_scenario("incast-burst"),
                                      Backend::kVl, 42);
  EXPECT_EQ(faulted.csv(), plain.csv());
  EXPECT_EQ(faulted.events, plain.events);
}

TEST(FaultPlane, FlashCrowdRescalesArrivals) {
  // factor < 1 compresses arrival gaps: same message budget, delivered
  // over fewer simulated ticks.
  const ScenarioSpec flash =
      with_faults("incast-burst", "flash@0+10000000:factor=0.25");
  const EngineResult base = run_spec(*find_scenario("incast-burst"),
                                     Backend::kVl, 42);
  const EngineResult r = run_spec(flash, Backend::kVl, 42);
  EXPECT_EQ(total(r.metrics, &traffic::TenantMetrics::delivered),
            total(base.metrics, &traffic::TenantMetrics::delivered));
  EXPECT_LT(r.metrics.ticks, base.metrics.ticks);
}

TEST(FaultPlane, ScaleGapIsAPureFunction) {
  FaultSpec spec = FaultSpec::parse("flash@100+100:factor=0.5,class=2");
  FaultPlane p(spec, 1);
  // Outside the window / wrong class: identity.
  EXPECT_EQ(p.scale_gap(0, QosClass::kBulk, 50, 80), 80u);
  EXPECT_EQ(p.scale_gap(0, QosClass::kLatency, 150, 80), 80u);
  // Inside: scaled, repeatably.
  const Tick scaled = p.scale_gap(0, QosClass::kBulk, 150, 80);
  EXPECT_EQ(scaled, 40u);
  EXPECT_EQ(p.scale_gap(0, QosClass::kBulk, 150, 80), scaled);
  EXPECT_GT(p.flash_rescales(), 0u);
}

TEST(FaultPlane, ChanCopiesFollowsTheOrdinalPeriod) {
  FaultSpec spec = FaultSpec::parse("loss@0+1000:every=4");
  FaultPlane p(spec, 1);
  int dropped = 0;
  for (int i = 0; i < 16; ++i)
    if (p.chan_copies(0, 10) == 0) ++dropped;
  EXPECT_EQ(dropped, 4);  // every 4th message, deterministically
  EXPECT_EQ(p.lost(), 4u);
  // Outside the window nothing is touched.
  EXPECT_EQ(p.chan_copies(0, 5000), 1);
}

TEST(FaultPlane, ShardedLinkFaultsMatchSeqVsThreaded) {
  ShardedOptions seq;
  seq.shards = 4;
  seq.sim_threads = 1;
  seq.population = 4000;
  seq.messages = 2048;
  ShardedOptions thr = seq;
  thr.sim_threads = 3;

  ScenarioSpec s = *find_scenario("shard-diurnal");
  s.faults = FaultSpec::parse(
      "partition@2000+3000:src=0,dst=2;spike@1000+6000:extra=128");

  const auto a = traffic::run_sharded(s, Backend::kVl, 42, seq);
  const auto b = traffic::run_sharded(s, Backend::kVl, 42, thr);
  EXPECT_EQ(a.shard_digests, b.shard_digests);
  EXPECT_EQ(a.shard_delivered, b.shard_delivered);
  EXPECT_EQ(a.engine.csv(), b.engine.csv());

  // Conservation across the partition window: posts stall, nothing drops.
  EXPECT_EQ(total(a.engine.metrics, &traffic::TenantMetrics::delivered),
            total(a.engine.metrics, &traffic::TenantMetrics::generated));

  // And the faults changed the run relative to a fault-free one.
  const auto plain =
      traffic::run_sharded(*find_scenario("shard-diurnal"), Backend::kVl, 42,
                           seq);
  EXPECT_NE(a.shard_digests, plain.shard_digests);
}

}  // namespace
}  // namespace vl::fault
