// Closed-loop QoS supervision: size_quotas() reproducing the hand-carved
// tables, the AIMD decision rules (windowed violation, panic-to-floor,
// probing recovery) against a synthetic timeline, and the end-to-end
// payoff — the supervisor must beat static quotas on the adversarial-bulk
// flood's latency-class SLO attainment.

#include "runtime/qos_supervisor.hpp"

#include <gtest/gtest.h>

#include "squeue/factory.hpp"
#include "traffic/engine.hpp"
#include "traffic/scenario.hpp"

namespace vl::runtime {
namespace {

TEST(SizeQuotas, ReproducesTheRelayCarve) {
  const sim::SystemConfig cfg = squeue::config_for(squeue::Backend::kVl);
  ChannelDemand d;
  d.relay_channels = 31;  // the historic FIR channel count
  const QuotaPlan p = size_quotas(cfg, d);
  EXPECT_EQ(p.per_sqi_quota,
            std::max(1u, (cfg.vlrd.prod_entries - 1) / 31u));
  // No qos demand: class rows stay at the token quota.
  EXPECT_EQ(p.vl_class_quota[0], 1u);
}

TEST(SizeQuotas, ReproducesTheClassCarve) {
  const sim::SystemConfig cfg = squeue::config_for(squeue::Backend::kVl);
  ChannelDemand d;
  d.qos = true;
  const bool present[kQosClasses] = {true, true, true};
  base_weights(d, present);
  const QuotaPlan p = size_quotas(cfg, d);

  const std::uint32_t budget = cfg.vlrd.prod_entries - 1;
  const std::uint32_t wsum = qos_weight(QosClass::kStandard) +
                             qos_weight(QosClass::kLatency) +
                             qos_weight(QosClass::kBulk);
  for (QosClass c : {QosClass::kStandard, QosClass::kLatency,
                     QosClass::kBulk}) {
    const auto i = static_cast<std::size_t>(c);
    EXPECT_EQ(p.vl_class_quota[i],
              std::max(1u, budget * qos_weight(c) / wsum))
        << to_string(c);
    EXPECT_EQ(p.caf_class_credits[i],
              std::max(1u, cfg.caf.credits_per_queue * qos_weight(c) / wsum))
        << to_string(c);
  }

  // Absent classes keep the token quota.
  ChannelDemand partial;
  partial.qos = true;
  const bool only_lat[kQosClasses] = {false, true, false};
  base_weights(partial, only_lat);
  const QuotaPlan q = size_quotas(cfg, partial);
  EXPECT_EQ(q.vl_class_quota[static_cast<std::size_t>(QosClass::kStandard)],
            1u);
  EXPECT_GT(q.vl_class_quota[static_cast<std::size_t>(QosClass::kLatency)],
            1u);
}

// Drives on_epoch() with a hand-rolled timeline: cumulative delivered /
// slo_within / blocked counters the test scripts epoch by epoch.
struct SupervisorHarness {
  obs::Timeline tl;
  double delivered = 0, within = 0, blocked = 0;
  Tick now = 0;

  SupervisorHarness() {
    tl.add_series("class.latency.delivered", [this] { return delivered; });
    tl.add_series("class.latency.slo_within", [this] { return within; });
    tl.add_series("class.latency.blocked_ticks", [this] { return blocked; });
  }

  /// One epoch in which `n` latency messages arrive, `good` of them within
  /// budget.
  void epoch(QosSupervisor& sup, double n, double good, double dblocked = 0) {
    delivered += n;
    within += good;
    blocked += dblocked;
    now += 1000;
    tl.sample(now);
    sup.on_epoch(tl);
  }
};

const bool kAll[kQosClasses] = {true, true, true};

TEST(QosSupervisor, PanicDropsBulkSideWeightsToTheFloorInOneEpoch) {
  QosSupervisor::Config cfg;
  cfg.min_window = 8;
  QosSupervisor sup(cfg, kAll);
  SupervisorHarness h;

  EXPECT_DOUBLE_EQ(sup.weight(QosClass::kBulk), 1.0);
  h.epoch(sup, 20, 0);  // 0% attainment, window judgeable: panic
  EXPECT_EQ(sup.violations(), 1u);
  EXPECT_DOUBLE_EQ(sup.weight(QosClass::kBulk), cfg.floor * 1.0);
  EXPECT_DOUBLE_EQ(sup.weight(QosClass::kStandard), cfg.floor * 2.0);
  EXPECT_DOUBLE_EQ(sup.weight(QosClass::kLatency), 4.0);  // never touched
}

TEST(QosSupervisor, MarginalMissStepsOneClassAtATime) {
  QosSupervisor::Config cfg;
  cfg.min_window = 8;
  QosSupervisor sup(cfg, kAll);
  SupervisorHarness h;

  h.epoch(sup, 20, 18);  // 90% < 95% target but above panic threshold
  EXPECT_EQ(sup.violations(), 1u);
  EXPECT_DOUBLE_EQ(sup.weight(QosClass::kBulk), 0.5);   // one MD step
  EXPECT_DOUBLE_EQ(sup.weight(QosClass::kStandard), 2.0);  // untouched
}

TEST(QosSupervisor, SmallWindowsAccumulateUntilJudgeable) {
  QosSupervisor::Config cfg;
  cfg.min_window = 8;
  QosSupervisor sup(cfg, kAll);
  SupervisorHarness h;

  h.epoch(sup, 3, 0);  // 3 deliveries: below min_window, no verdict yet
  EXPECT_EQ(sup.violations(), 0u);
  h.epoch(sup, 3, 0);
  EXPECT_EQ(sup.violations(), 0u);
  h.epoch(sup, 3, 0);  // accumulated window of 9 >= 8: verdict fires
  EXPECT_EQ(sup.violations(), 1u);
}

TEST(QosSupervisor, RecoveryProbesOneClassPerCleanStreak) {
  QosSupervisor::Config cfg;
  cfg.min_window = 8;
  cfg.recovery_epochs = 2;
  QosSupervisor sup(cfg, kAll);
  SupervisorHarness h;

  h.epoch(sup, 20, 0);  // panic: both classes at floor
  const double std_floor = sup.weight(QosClass::kStandard);
  const double bulk_floor = sup.weight(QosClass::kBulk);

  h.epoch(sup, 20, 20);  // clean
  h.epoch(sup, 20, 20);  // clean streak reaches recovery_epochs
  EXPECT_EQ(sup.increases(), 1u);
  EXPECT_GT(sup.weight(QosClass::kStandard), std_floor);  // standard first
  EXPECT_DOUBLE_EQ(sup.weight(QosClass::kBulk), bulk_floor);
}

TEST(QosSupervisor, BlockedTicksSpikeIsALeadingIndicator) {
  QosSupervisor::Config cfg;
  cfg.min_window = 1000000;  // attainment path disabled for this test
  cfg.blocked_spike = 4.0;
  QosSupervisor sup(cfg, kAll);
  SupervisorHarness h;

  h.epoch(sup, 0, 0, 100);  // seeds the EWMA
  h.epoch(sup, 0, 0, 110);
  EXPECT_EQ(sup.violations(), 0u);
  h.epoch(sup, 0, 0, 5000);  // >> 4x EWMA: spike
  EXPECT_EQ(sup.violations(), 1u);
  EXPECT_LT(sup.weight(QosClass::kBulk), 1.0);
}

TEST(QosSupervisor, SupervisorBeatsStaticQuotasOnAdversarialBulk) {
  using traffic::find_scenario;
  const traffic::ScenarioSpec* spec = find_scenario("qos-adversarial-bulk");
  ASSERT_NE(spec, nullptr);
  ASSERT_TRUE(spec->supervisor);  // preset default: closed loop on

  traffic::ScenarioSpec off = *spec;
  off.supervisor = false;

  const auto on_r = traffic::run_spec(*spec, squeue::Backend::kVl, 42);
  const auto off_r = traffic::run_spec(off, squeue::Backend::kVl, 42);

  double att_on = -1, att_off = -1;
  for (const auto& c : on_r.metrics.by_class())
    if (c.cls == QosClass::kLatency) att_on = c.slo_attained_pct();
  for (const auto& c : off_r.metrics.by_class())
    if (c.cls == QosClass::kLatency) att_off = c.slo_attained_pct();

  // The closed loop must hold the SLO the static carve measurably fails.
  EXPECT_GE(att_on, 90.0);
  EXPECT_LT(att_off, 50.0);
  EXPECT_GT(att_on, att_off + 30.0);
}

}  // namespace
}  // namespace vl::runtime
