// Fig. 10 control-region frame tests across all four element-size codes:
// byte / half / word / doubleword messages must round-trip through a VL
// queue with values truncated to the element width and the data region
// filled from higher addresses toward the LSB.

#include <gtest/gtest.h>

#include <vector>

#include "runtime/machine.hpp"
#include "runtime/vl_queue.hpp"

namespace vl::runtime {
namespace {

using sim::Co;
using sim::SimThread;
using sim::spawn;

TEST(Fig10Codec, ElemGeometry) {
  EXPECT_EQ(elem_bytes(ElemSize::kByte), 1u);
  EXPECT_EQ(elem_bytes(ElemSize::kHalf), 2u);
  EXPECT_EQ(elem_bytes(ElemSize::kWord), 4u);
  EXPECT_EQ(elem_bytes(ElemSize::kDword), 8u);
  EXPECT_EQ(max_elems(ElemSize::kByte), 62u);
  EXPECT_EQ(max_elems(ElemSize::kHalf), 31u);
  EXPECT_EQ(max_elems(ElemSize::kWord), 15u);
  EXPECT_EQ(max_elems(ElemSize::kDword), 7u);
}

TEST(Fig10Codec, PackUnpackAllSizes) {
  for (auto sz : {ElemSize::kByte, ElemSize::kHalf, ElemSize::kWord,
                  ElemSize::kDword}) {
    for (std::uint8_t n = 1; n <= max_elems(sz) && n < 64; ++n) {
      for (auto qos : {QosClass::kStandard, QosClass::kLatency,
                       QosClass::kBulk}) {
        const std::uint16_t c = pack_ctrl(sz, n, qos);
        EXPECT_NE(c, 0u);  // a valid frame is never "clean"
        EXPECT_EQ(ctrl_size(c), sz);
        EXPECT_EQ(ctrl_count(c), n);
        EXPECT_EQ(ctrl_qos(c), qos);  // reserved byte carries the class
      }
    }
  }
  // Untagged (two-arg) packs read back as the default class.
  EXPECT_EQ(ctrl_qos(pack_ctrl(ElemSize::kDword, 1)), QosClass::kStandard);
}

TEST(Fig10Codec, DataFillsHighToLow) {
  // The n used slots occupy the top of the data region; a 1-element frame
  // sits just below the control word.
  EXPECT_EQ(elem_offset(ElemSize::kDword, 0, 1), 48u);
  EXPECT_EQ(elem_offset(ElemSize::kDword, 0, 7), 0u);
  EXPECT_EQ(elem_offset(ElemSize::kDword, 6, 7), 48u);
  EXPECT_EQ(elem_offset(ElemSize::kByte, 0, 1), 61u);
  EXPECT_EQ(elem_offset(ElemSize::kByte, 61, 62), 61u);
  // No element overlaps the 2 B control region at offset 62.
  for (auto sz : {ElemSize::kByte, ElemSize::kHalf, ElemSize::kWord,
                  ElemSize::kDword}) {
    const std::uint8_t n = max_elems(sz);
    EXPECT_LE(elem_offset(sz, n - 1, n) + elem_bytes(sz), kCtrlOffset);
  }
}

class FrameSizes : public ::testing::TestWithParam<ElemSize> {};

TEST_P(FrameSizes, FullFrameRoundTrip) {
  const ElemSize sz = GetParam();
  Machine m;
  VlQueueLib lib(m);
  const auto q = lib.open("frames");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(1));
  const std::uint8_t n = max_elems(sz);
  const std::uint64_t mask =
      elem_bytes(sz) == 8 ? ~0ull : (1ull << (8 * elem_bytes(sz))) - 1;
  std::vector<std::uint64_t> elems;
  for (std::uint8_t i = 0; i < n; ++i)
    elems.push_back((0x0123'4567'89ab'cdefull * (i + 1)) & mask);
  // Ensure at least one element is nonzero in its low byte (frame validity
  // is carried by the control word, not the data, so zeros are fine too).
  Frame got;
  spawn([](Producer& p, ElemSize sz,
           const std::vector<std::uint64_t>* e) -> Co<void> {
    co_await p.enqueue_elems(sz, *e);
  }(prod, sz, &elems));
  spawn([](Consumer& c, Frame* out) -> Co<void> {
    *out = co_await c.dequeue_frame();
  }(cons, &got));
  m.run();
  EXPECT_EQ(got.size, sz);
  ASSERT_EQ(got.elems.size(), elems.size());
  for (std::size_t i = 0; i < elems.size(); ++i)
    EXPECT_EQ(got.elems[i], elems[i]) << "element " << i;
}

TEST_P(FrameSizes, SingleElementRoundTrip) {
  const ElemSize sz = GetParam();
  Machine m;
  VlQueueLib lib(m);
  const auto q = lib.open("frames1");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(1));
  const std::uint64_t mask =
      elem_bytes(sz) == 8 ? ~0ull : (1ull << (8 * elem_bytes(sz))) - 1;
  const std::uint64_t v = 0xfedc'ba98'7654'3210ull & mask;
  Frame got;
  spawn([](Producer& p, ElemSize sz, std::uint64_t v) -> Co<void> {
    const std::uint64_t one[1] = {v};
    co_await p.enqueue_elems(sz, std::span<const std::uint64_t>(one, 1));
  }(prod, sz, v));
  spawn([](Consumer& c, Frame* out) -> Co<void> {
    *out = co_await c.dequeue_frame();
  }(cons, &got));
  m.run();
  EXPECT_EQ(got.size, sz);
  ASSERT_EQ(got.elems.size(), 1u);
  EXPECT_EQ(got.elems[0], v);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, FrameSizes,
                         ::testing::Values(ElemSize::kByte, ElemSize::kHalf,
                                           ElemSize::kWord, ElemSize::kDword),
                         [](const auto& info) {
                           switch (info.param) {
                             case ElemSize::kByte: return "byte";
                             case ElemSize::kHalf: return "half";
                             case ElemSize::kWord: return "word";
                             case ElemSize::kDword: return "dword";
                           }
                           return "?";
                         });

TEST(Fig10Codec, MixedSizeStreamDecodes) {
  // A producer interleaving frame sizes; the consumer's dequeue_frame must
  // decode each frame with its own size code.
  Machine m;
  VlQueueLib lib(m);
  const auto q = lib.open("mixed");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(1));
  std::vector<Frame> got;
  spawn([](Producer& p) -> Co<void> {
    const std::uint64_t bytes[3] = {0x11, 0x22, 0x33};
    const std::uint64_t halves[2] = {0xaaaa, 0xbbbb};
    const std::uint64_t words[2] = {0xdeadbeef, 0xcafef00d};
    const std::uint64_t dwords[1] = {0x0123456789abcdefull};
    co_await p.enqueue_elems(ElemSize::kByte, {bytes, 3});
    co_await p.enqueue_elems(ElemSize::kHalf, {halves, 2});
    co_await p.enqueue_elems(ElemSize::kWord, {words, 2});
    co_await p.enqueue_elems(ElemSize::kDword, {dwords, 1});
  }(prod));
  spawn([](Consumer& c, std::vector<Frame>* out) -> Co<void> {
    for (int i = 0; i < 4; ++i) out->push_back(co_await c.dequeue_frame());
  }(cons, &got));
  m.run();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].size, ElemSize::kByte);
  EXPECT_EQ(got[0].elems, (std::vector<std::uint64_t>{0x11, 0x22, 0x33}));
  EXPECT_EQ(got[1].size, ElemSize::kHalf);
  EXPECT_EQ(got[1].elems, (std::vector<std::uint64_t>{0xaaaa, 0xbbbb}));
  EXPECT_EQ(got[2].size, ElemSize::kWord);
  EXPECT_EQ(got[2].elems, (std::vector<std::uint64_t>{0xdeadbeef, 0xcafef00d}));
  EXPECT_EQ(got[3].size, ElemSize::kDword);
  EXPECT_EQ(got[3].elems, (std::vector<std::uint64_t>{0x0123456789abcdefull}));
}

TEST(Fig10Codec, ValuesTruncateToElementWidth) {
  Machine m;
  VlQueueLib lib(m);
  const auto q = lib.open("trunc");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(1));
  Frame got;
  spawn([](Producer& p) -> Co<void> {
    const std::uint64_t big[1] = {0x1234'5678'9abc'deffull};
    co_await p.enqueue_elems(ElemSize::kByte, {big, 1});
  }(prod));
  spawn([](Consumer& c, Frame* out) -> Co<void> {
    *out = co_await c.dequeue_frame();
  }(cons, &got));
  m.run();
  ASSERT_EQ(got.elems.size(), 1u);
  EXPECT_EQ(got.elems[0], 0xffu);  // low byte survives
}

}  // namespace
}  // namespace vl::runtime
