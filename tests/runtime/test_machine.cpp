#include "runtime/machine.hpp"

#include <gtest/gtest.h>

namespace vl::runtime {
namespace {

TEST(Machine, Table3ConfigBuilds16Cores) {
  Machine m;
  EXPECT_EQ(m.num_cores(), 16u);
}

TEST(Machine, AllocAlignsAndAdvances) {
  Machine m;
  const Addr a = m.alloc(10);
  const Addr b = m.alloc(10);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 10);
  const Addr c = m.alloc(100, 4096);
  EXPECT_EQ(c % 4096, 0u);
}

TEST(Machine, AllocationsNeverReachDeviceWindow) {
  Machine m;
  for (int i = 0; i < 1000; ++i)
    EXPECT_FALSE(vlrd::is_device_addr(m.alloc(4096)));
}

TEST(Machine, NsConversionUses2GHz) {
  Machine m;
  EXPECT_DOUBLE_EQ(m.ns(2), 1.0);  // 2 ticks @ 0.5 ns
}

TEST(Machine, ThreadsOnDistinctCoresAreIndependent) {
  Machine m;
  auto t0 = m.thread_on(0);
  auto t5 = m.thread_on(5);
  EXPECT_EQ(t0.core->id(), 0u);
  EXPECT_EQ(t5.core->id(), 5u);
  EXPECT_EQ(t0.tid, 0);
  EXPECT_EQ(t5.tid, 0);  // tids are per-core
}

TEST(Machine, IdealConfigPropagatesToVlrd) {
  Machine m(sim::SystemConfig::table3_ideal());
  // Ideal device never reports full buffers.
  EXPECT_EQ(m.vlrd().prod_free_slots(), UINT32_MAX);
}

}  // namespace
}  // namespace vl::runtime
