// Thread-migration tests (§ III-B): a consumer moving between cores must
// never lose a message — in-flight injections are rejected (pushable flag
// dropped on the old core) and the data stays with the VLRD until the
// re-issued vl_fetch from the new core claims it.

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/machine.hpp"
#include "runtime/vl_queue.hpp"

namespace vl::runtime {
namespace {

using sim::Co;
using sim::SimThread;
using sim::spawn;

TEST(Migration, ProducerRebindIssuesFromNewCore) {
  Machine m;
  VlQueueLib lib(m);
  const auto q = lib.open("q");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(5));
  std::vector<std::uint64_t> got;
  spawn([](Producer& p, Machine& m) -> Co<void> {
    co_await p.enqueue1(1);
    p.migrate(m.thread_on(3));
    co_await p.enqueue1(2);
  }(prod, m));
  spawn([](Consumer& c, std::vector<std::uint64_t>* out) -> Co<void> {
    out->push_back(co_await c.dequeue1());
    out->push_back(co_await c.dequeue1());
  }(cons, &got));
  m.run();
  ASSERT_EQ(got.size(), 2u);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got[0], 1u);
  EXPECT_EQ(got[1], 2u);
  EXPECT_EQ(prod.thread().core->id(), 3u);
}

TEST(Migration, ConsumerMigrationMidWaitLosesNothing) {
  // The § III-B scenario: demand registered from core 5, thread migrates to
  // core 6 before data arrives. The injection to core 5 must be rejected
  // (its pushable flag is gone) and the message recovered from core 6.
  Machine m;
  VlQueueLib lib(m);
  const auto q = lib.open("q");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(5));
  std::uint64_t got = 0;
  spawn([](Consumer& c, Producer& p, Machine& m, std::uint64_t* out)
            -> Co<void> {
    // Register demand; nothing is available yet, so the probe fails.
    auto miss = co_await c.try_dequeue(/*poll_budget=*/4);
    EXPECT_FALSE(miss.has_value());
    // Migrate to core 6, *then* let the producer push.
    c.migrate(m.thread_on(6));
    co_await p.enqueue1(42);
    *out = co_await c.dequeue1();
  }(cons, prod, m, &got));
  m.run();
  EXPECT_EQ(got, 42u);
  EXPECT_EQ(cons.thread().core->id(), 6u);
  // The stale registration's injection was rejected and retried.
  EXPECT_GE(m.vlrd().stats().inject_retry, 1u);
  EXPECT_EQ(m.vlrd().queued_data(q.sqi), 0u);  // nothing stranded
}

TEST(Migration, SameCoreMigrationKeepsPushableArmed) {
  // Rebinding to another thread on the *same* core is not an OS migration;
  // the pushable flag must survive so the pending injection still lands.
  Machine m;
  VlQueueLib lib(m);
  const auto q = lib.open("q");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(5));
  std::uint64_t got = 0;
  spawn([](Consumer& c, Producer& p, Machine& m, std::uint64_t* out)
            -> Co<void> {
    auto miss = co_await c.try_dequeue(4);
    EXPECT_FALSE(miss.has_value());
    c.migrate(m.thread_on(5));  // same core, new tid
    co_await p.enqueue1(7);
    *out = co_await c.dequeue1();
  }(cons, prod, m, &got));
  m.run();
  EXPECT_EQ(got, 7u);
}

TEST(Migration, RepeatedMigrationStormDeliversAll) {
  // Property: a consumer hopping cores between every message still receives
  // every message exactly once.
  Machine m;
  VlQueueLib lib(m);
  const auto q = lib.open("q");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(4));
  constexpr int kMsgs = 24;
  std::vector<std::uint64_t> got;
  spawn([](Producer& p) -> Co<void> {
    for (std::uint64_t i = 0; i < kMsgs; ++i) co_await p.enqueue1(i);
  }(prod));
  spawn([](Consumer& c, Machine& m, std::vector<std::uint64_t>* out)
            -> Co<void> {
    for (int i = 0; i < kMsgs; ++i) {
      out->push_back(co_await c.dequeue1());
      c.migrate(m.thread_on(static_cast<CoreId>(4 + (i % 8))));
    }
  }(cons, m, &got));
  m.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMsgs));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end());
  for (int i = 0; i < kMsgs; ++i) EXPECT_EQ(got[i], static_cast<std::uint64_t>(i));
}

TEST(Migration, FirStyleOversubscriptionStillDrains) {
  // Two consumer endpoints time-sharing one core (the FIR effect: frequent
  // context switches clear pushable flags, driving inject_retry up) must
  // still drain both queues.
  Machine m;
  VlQueueLib lib(m);
  const auto qa = lib.open("qa");
  const auto qb = lib.open("qb");
  auto pa = lib.make_producer(qa, m.thread_on(0));
  auto pb = lib.make_producer(qb, m.thread_on(1));
  auto ca = lib.make_consumer(qa, m.thread_on(5));
  auto cb = lib.make_consumer(qb, m.thread_on(5));  // same core as ca
  int got_a = 0, got_b = 0;
  spawn([](Producer& p) -> Co<void> {
    for (std::uint64_t i = 0; i < 10; ++i) co_await p.enqueue1(i);
  }(pa));
  spawn([](Producer& p) -> Co<void> {
    for (std::uint64_t i = 0; i < 10; ++i) co_await p.enqueue1(i);
  }(pb));
  spawn([](Consumer& c, int* got) -> Co<void> {
    for (int i = 0; i < 10; ++i) {
      (void)co_await c.dequeue1();
      ++*got;
    }
  }(ca, &got_a));
  spawn([](Consumer& c, int* got) -> Co<void> {
    for (int i = 0; i < 10; ++i) {
      (void)co_await c.dequeue1();
      ++*got;
    }
  }(cb, &got_b));
  m.run();
  EXPECT_EQ(got_a, 10);
  EXPECT_EQ(got_b, 10);
  EXPECT_GT(m.core(5).ctx_switches(), 0u);
}

}  // namespace
}  // namespace vl::runtime
