// Supervisor (SQI allocation / mmap emulation) tests — paper § III-C1/C2.

#include "runtime/supervisor.hpp"

#include <gtest/gtest.h>

namespace vl::runtime {
namespace {

TEST(Supervisor, ShmOpenAllocatesStableSqis) {
  Supervisor sup;
  const int a = sup.shm_open("queue_a");
  const int b = sup.shm_open("queue_b");
  EXPECT_GE(a, 0);
  EXPECT_GE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(sup.shm_open("queue_a"), a);  // reopen by name
}

TEST(Supervisor, SqiSpaceIsBounded) {
  Supervisor sup;
  for (int i = 0; i < Supervisor::kMaxSqi; ++i)
    ASSERT_GE(sup.shm_open("q" + std::to_string(i)), 0);
  EXPECT_EQ(sup.shm_open("one_too_many"), -1);
}

TEST(Supervisor, UnlinkRecyclesSqi) {
  Supervisor sup;
  for (int i = 0; i < Supervisor::kMaxSqi; ++i)
    sup.shm_open("q" + std::to_string(i));
  sup.shm_unlink("q7");
  EXPECT_GE(sup.shm_open("fresh"), 0);
}

TEST(Supervisor, MmapReturnsDeviceAddresses) {
  Supervisor sup;
  const Sqi sqi = static_cast<Sqi>(sup.shm_open("q"));
  auto prod = sup.vl_mmap(sqi, Prot::kWrite);
  auto cons = sup.vl_mmap(sqi, Prot::kRead);
  ASSERT_TRUE(prod && cons);
  EXPECT_TRUE(vlrd::is_device_addr(*prod));
  EXPECT_NE(*prod, *cons);  // distinct pages
  EXPECT_EQ(vlrd::decode(*prod).sqi, sqi);
  EXPECT_EQ(vlrd::decode(*cons).sqi, sqi);
}

TEST(Supervisor, MmapOfClosedSqiFails) {
  Supervisor sup;
  EXPECT_FALSE(sup.vl_mmap(5, Prot::kRead).has_value());
}

TEST(Supervisor, PageBudgetIs32PerSqi) {
  Supervisor sup;
  const Sqi sqi = static_cast<Sqi>(sup.shm_open("q"));
  for (int i = 0; i < 32; ++i)
    ASSERT_TRUE(sup.vl_mmap(sqi, Prot::kWrite).has_value()) << i;
  EXPECT_FALSE(sup.vl_mmap(sqi, Prot::kWrite).has_value());
}

TEST(Supervisor, EndpointSubAllocationYields64Slots) {
  Supervisor sup;
  const Sqi sqi = static_cast<Sqi>(sup.shm_open("q"));
  const Addr page = *sup.vl_mmap(sqi, Prot::kWrite);
  std::set<Addr> eps;
  for (int i = 0; i < 64; ++i) {
    auto ep = sup.alloc_endpoint(page);
    ASSERT_TRUE(ep.has_value());
    EXPECT_EQ(*ep % 64, 0u);  // 64 B aligned (Fig. 9)
    eps.insert(*ep);
  }
  EXPECT_EQ(eps.size(), 64u);
  EXPECT_FALSE(sup.alloc_endpoint(page).has_value());  // page exhausted
}

TEST(Supervisor, FreedEndpointIsReusable) {
  Supervisor sup;
  const Sqi sqi = static_cast<Sqi>(sup.shm_open("q"));
  const Addr page = *sup.vl_mmap(sqi, Prot::kRead);
  const Addr ep = *sup.alloc_endpoint(page);
  sup.free_endpoint(ep);
  EXPECT_EQ(*sup.alloc_endpoint(page), ep);  // bit-vector reuse
}

TEST(Supervisor, EndpointsEncodeTheirSqiAndPage) {
  Supervisor sup;
  const Sqi sqi = static_cast<Sqi>(sup.shm_open("q"));
  const Addr page = *sup.vl_mmap(sqi, Prot::kWrite);
  const Addr ep = *sup.alloc_endpoint(page);
  const auto d = vlrd::decode(ep);
  EXPECT_EQ(d.sqi, sqi);
  EXPECT_EQ(d.page, vlrd::decode(page).page);
}

// --- multi-device (Fig. 9 bits J:N+1) ---------------------------------------

TEST(SupervisorMultiDevice, RoundRobinPlacement) {
  Supervisor sup(3);
  const int a = sup.shm_open("a");
  const int b = sup.shm_open("b");
  const int c = sup.shm_open("c");
  const int d = sup.shm_open("d");
  EXPECT_EQ(Supervisor::desc_device(a), 0u);
  EXPECT_EQ(Supervisor::desc_device(b), 1u);
  EXPECT_EQ(Supervisor::desc_device(c), 2u);
  EXPECT_EQ(Supervisor::desc_device(d), 0u);  // wrapped
  EXPECT_EQ(Supervisor::desc_sqi(a), Supervisor::desc_sqi(b));  // both 0
}

TEST(SupervisorMultiDevice, CapacityMultipliesByDeviceCount) {
  Supervisor sup(2);
  for (int i = 0; i < 2 * Supervisor::kMaxSqi; ++i)
    ASSERT_GE(sup.shm_open("q" + std::to_string(i)), 0) << i;
  EXPECT_EQ(sup.shm_open("one_too_many"), -1);
}

TEST(SupervisorMultiDevice, SpillsToOtherDeviceWhenPreferredFull) {
  Supervisor sup(2);
  // Fill device 0 and device 1 alternately, then unlink only device-0
  // queues: new opens must keep succeeding on device 0 slots.
  std::vector<int> descs;
  for (int i = 0; i < 2 * Supervisor::kMaxSqi; ++i)
    descs.push_back(sup.shm_open("q" + std::to_string(i)));
  for (int i = 0; i < 2 * Supervisor::kMaxSqi; ++i)
    if (Supervisor::desc_device(descs[i]) == 0)
      sup.shm_unlink("q" + std::to_string(i));
  // Preferred device alternates, but only device 0 has space now.
  const int x = sup.shm_open("x");
  const int y = sup.shm_open("y");
  ASSERT_GE(x, 0);
  ASSERT_GE(y, 0);
  EXPECT_EQ(Supervisor::desc_device(x), 0u);
  EXPECT_EQ(Supervisor::desc_device(y), 0u);
}

TEST(SupervisorMultiDevice, MmapEncodesDeviceBits) {
  Supervisor sup(4);
  sup.shm_open("a");                 // device 0
  const int b = sup.shm_open("b");   // device 1
  const Addr page = *sup.vl_mmap(b, Prot::kWrite);
  EXPECT_EQ(vlrd::decode(page).vlrd_id, 1u);
  const Addr ep = *sup.alloc_endpoint(page);
  EXPECT_EQ(vlrd::decode(ep).vlrd_id, 1u);
}

TEST(SupervisorMultiDevice, DescriptorHelpersRoundTrip) {
  for (std::uint32_t dev : {0u, 1u, 3u}) {
    for (Sqi sqi : {Sqi{0}, Sqi{17}, Sqi{63}}) {
      const int desc = static_cast<int>(dev) * Supervisor::kMaxSqi +
                       static_cast<int>(sqi);
      EXPECT_EQ(Supervisor::desc_device(desc), dev);
      EXPECT_EQ(Supervisor::desc_sqi(desc), sqi);
    }
  }
}

}  // namespace
}  // namespace vl::runtime
