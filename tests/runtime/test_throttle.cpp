// Throttle (AIMD back-pressure response, § II) tests: gap dynamics, and
// end-to-end behaviour — a throttled producer must waste far fewer device
// NACKs than a naive retry loop while still delivering everything.

#include "runtime/throttle.hpp"

#include <gtest/gtest.h>

#include <span>

#include "runtime/machine.hpp"
#include "runtime/vl_queue.hpp"

namespace vl::runtime {
namespace {

using sim::Co;
using sim::SimThread;
using sim::spawn;

TEST(Throttle, StartsUnthrottled) {
  Throttle th;
  EXPECT_EQ(th.gap(), 0u);
}

TEST(Throttle, NackGrowsGapAdditively) {
  ThrottleConfig cfg;
  cfg.increase = 10;
  Throttle th(cfg);
  th.on_result(false);
  EXPECT_EQ(th.gap(), 10u);
  th.on_result(false);
  EXPECT_EQ(th.gap(), 20u);
  EXPECT_EQ(th.nacks(), 2u);
}

TEST(Throttle, GapIsCapped) {
  ThrottleConfig cfg;
  cfg.increase = 1000;
  cfg.max_gap = 2500;
  Throttle th(cfg);
  for (int i = 0; i < 5; ++i) th.on_result(false);
  EXPECT_EQ(th.gap(), 2500u);
}

TEST(Throttle, SuccessShrinksMultiplicativelyAfterWarmup) {
  ThrottleConfig cfg;
  cfg.increase = 100;
  cfg.warmup = 2;
  cfg.decrease = 0.5;
  Throttle th(cfg);
  th.on_result(false);           // gap 100
  th.on_result(true);            // streak 1: no shrink yet
  EXPECT_EQ(th.gap(), 100u);
  th.on_result(true);            // streak 2 = warmup: shrink
  EXPECT_EQ(th.gap(), 50u);
  th.on_result(false);           // NACK resets the streak
  EXPECT_EQ(th.gap(), 150u);
  th.on_result(true);
  EXPECT_EQ(th.gap(), 150u);     // streak 1 again: hold
}

TEST(Throttle, FloorRespected) {
  ThrottleConfig cfg;
  cfg.min_gap = 8;
  cfg.warmup = 1;
  Throttle th(cfg);
  th.on_result(false);  // 16
  for (int i = 0; i < 10; ++i) th.on_result(true);
  EXPECT_EQ(th.gap(), 8u);
}

TEST(ThrottleIntegration, CutsNackStormAgainstSlowConsumer) {
  // A tiny VLRD (4 producer entries) and a slow consumer, driven by three
  // retry disciplines:
  //   kPoll     — raw try_enqueue on a short fixed pause: the NACK storm.
  //   kThrottle — AIMD pacing converges on the consumer's service rate.
  //   kPark     — blocking enqueue(): parks on the machine's space futex
  //               and only retries when the device actually freed a slot.
  // The throttle must cut the storm for callers driving try_enqueue by
  // hand, and the kernel's park/wake path must be at least as NACK-frugal
  // as AIMD (it retries once per genuine wakeup).
  enum class Mode { kPoll, kThrottle, kPark };
  auto run_one = [](Mode mode) {
    sim::SystemConfig cfg;
    cfg.vlrd.prod_entries = 4;
    Machine m(cfg);
    VlQueueLib lib(m);
    const auto q = lib.open("thq");
    auto prod = lib.make_producer(q, m.thread_on(0));
    auto cons = lib.make_consumer(q, m.thread_on(8));
    constexpr int kMsgs = 60;
    spawn([](Producer& p, Mode mode) -> Co<void> {
      Throttle th;
      for (std::uint64_t i = 0; i < kMsgs; ++i) {
        const std::uint64_t one[1] = {i};
        switch (mode) {
          case Mode::kPoll:
            for (;;) {
              const bool ok = co_await p.try_enqueue(
                  std::span<const std::uint64_t>(one, 1));
              if (ok) break;
              co_await p.thread().compute(16);
            }
            break;
          case Mode::kThrottle:
            for (;;) {
              co_await th.pace(p.thread());
              const bool ok = co_await p.try_enqueue(
                  std::span<const std::uint64_t>(one, 1));
              th.on_result(ok);
              if (ok) break;
            }
            break;
          case Mode::kPark:
            co_await p.enqueue1(i);
            break;
        }
      }
    }(prod, mode));
    spawn([](Consumer& c) -> Co<void> {
      for (int i = 0; i < kMsgs; ++i) {
        (void)co_await c.dequeue1();
        co_await c.thread().compute(2000);  // slow service
      }
    }(cons));
    m.run();
    return m.vlrd_stats().push_nacks;
  };
  const auto polled_nacks = run_one(Mode::kPoll);
  const auto throttled_nacks = run_one(Mode::kThrottle);
  const auto parked_nacks = run_one(Mode::kPark);
  EXPECT_LT(throttled_nacks, polled_nacks);
  EXPECT_LE(parked_nacks, throttled_nacks);
}

}  // namespace
}  // namespace vl::runtime
