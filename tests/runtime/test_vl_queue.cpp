// End-to-end tests of the user-space VL queue library (§ III-C3/III-D),
// including the Fig. 10 control-region codec and M:N channel semantics.

#include "runtime/vl_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace vl::runtime {
namespace {

using sim::Co;
using sim::SimThread;
using sim::spawn;

TEST(ControlRegion, CodecRoundTrips) {
  for (std::uint8_t n = 1; n <= 7; ++n) {
    const std::uint16_t c = pack_ctrl(ElemSize::kDword, n);
    EXPECT_NE(c, 0u);
    EXPECT_EQ(ctrl_count(c), n);
    EXPECT_EQ(ctrl_size(c), ElemSize::kDword);
  }
}

TEST(ControlRegion, DataFillsHighToLow) {
  // First element of an n-element message sits at the highest offset slice.
  EXPECT_EQ(dword_offset(0, 1), 48u);
  EXPECT_EQ(dword_offset(0, 7), 0u);
  EXPECT_EQ(dword_offset(6, 7), 48u);
  // No element overlaps the control region at byte 62.
  for (std::uint8_t n = 1; n <= 7; ++n)
    for (std::uint8_t i = 0; i < n; ++i)
      EXPECT_LE(dword_offset(i, n) + 8, kCtrlOffset);
}

struct VlQueueFixture : ::testing::Test {
  Machine m;
  VlQueueLib lib{m};
};

TEST_F(VlQueueFixture, SingleMessageRoundTrip) {
  const QueueHandle q = lib.open("q");
  SimThread pt = m.thread_on(0), ct = m.thread_on(1);
  auto prod = lib.make_producer(q, pt);
  auto cons = lib.make_consumer(q, ct);
  std::uint64_t got = 0;

  spawn([](Producer& p) -> Co<void> { co_await p.enqueue1(0xfeed); }(prod));
  spawn([](Consumer& c, std::uint64_t* out) -> Co<void> {
    *out = co_await c.dequeue1();
  }(cons, &got));
  m.run();
  EXPECT_EQ(got, 0xfeedu);
}

TEST_F(VlQueueFixture, BatchedMessagePreservesOrderAndCount) {
  const QueueHandle q = lib.open("q");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(1));
  std::vector<std::uint64_t> got;

  spawn([](Producer& p) -> Co<void> {
    const std::uint64_t words[7] = {10, 20, 30, 40, 50, 60, 70};
    co_await p.enqueue(words);
  }(prod));
  spawn([](Consumer& c, std::vector<std::uint64_t>* out) -> Co<void> {
    *out = co_await c.dequeue();
  }(cons, &got));
  m.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{10, 20, 30, 40, 50, 60, 70}));
}

TEST_F(VlQueueFixture, StreamOfMessagesInFifoOrder) {
  const QueueHandle q = lib.open("q");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(1));
  std::vector<std::uint64_t> got;
  constexpr int kN = 200;

  spawn([](Producer& p) -> Co<void> {
    for (std::uint64_t i = 0; i < kN; ++i) co_await p.enqueue1(i);
  }(prod));
  spawn([](Consumer& c, std::vector<std::uint64_t>* out) -> Co<void> {
    for (int i = 0; i < kN; ++i) out->push_back(co_await c.dequeue1());
  }(cons, &got));
  m.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(got[i], static_cast<std::uint64_t>(i));
}

TEST_F(VlQueueFixture, ManyProducersOneConsumer) {
  // The paper's incast pattern: M producers share one SQI, the consumer
  // drains M*K messages with zero shared software queue state.
  const QueueHandle q = lib.open("incast");
  constexpr int kProds = 15, kPer = 20;
  std::vector<Producer> prods;
  for (int p = 0; p < kProds; ++p)
    prods.push_back(lib.make_producer(q, m.thread_on(static_cast<CoreId>(p))));
  auto cons = lib.make_consumer(q, m.thread_on(15));
  std::uint64_t sum = 0;

  for (int p = 0; p < kProds; ++p) {
    spawn([](Producer& pr, int base) -> Co<void> {
      for (int i = 0; i < kPer; ++i)
        co_await pr.enqueue1(static_cast<std::uint64_t>(base * 1000 + i));
    }(prods[p], p));
  }
  spawn([](Consumer& c, std::uint64_t* sum) -> Co<void> {
    for (int i = 0; i < kProds * kPer; ++i) *sum += co_await c.dequeue1();
  }(cons, &sum));
  m.run();

  std::uint64_t expect = 0;
  for (int p = 0; p < kProds; ++p)
    for (int i = 0; i < kPer; ++i) expect += p * 1000 + i;
  EXPECT_EQ(sum, expect);
}

TEST_F(VlQueueFixture, OneProducerManyConsumersEachMessageDeliveredOnce) {
  const QueueHandle q = lib.open("fanout");
  constexpr int kCons = 4, kTotal = 80;
  auto prod = lib.make_producer(q, m.thread_on(0));
  std::vector<Consumer> cons;
  std::vector<std::vector<std::uint64_t>> got(kCons);
  for (int c = 0; c < kCons; ++c)
    cons.push_back(lib.make_consumer(q, m.thread_on(static_cast<CoreId>(c + 1))));

  spawn([](Producer& p) -> Co<void> {
    for (std::uint64_t i = 1; i <= kTotal; ++i) co_await p.enqueue1(i);
  }(prod));
  for (int c = 0; c < kCons; ++c) {
    spawn([](Consumer& cc, std::vector<std::uint64_t>* out) -> Co<void> {
      for (int i = 0; i < kTotal / kCons; ++i)
        out->push_back(co_await cc.dequeue1());
    }(cons[c], &got[c]));
  }
  m.run();

  std::vector<std::uint64_t> all;
  for (auto& g : got) all.insert(all.end(), g.begin(), g.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i)
    EXPECT_EQ(all[i], static_cast<std::uint64_t>(i + 1));  // once each
}

TEST_F(VlQueueFixture, BackPressureBlocksUntilDrained) {
  sim::SystemConfig cfg;
  cfg.vlrd.prod_entries = 4;  // tiny device buffer
  Machine small(cfg);
  VlQueueLib slib(small);
  const QueueHandle q = slib.open("bp");
  auto prod = slib.make_producer(q, small.thread_on(0));
  auto cons = slib.make_consumer(q, small.thread_on(1));
  int produced = 0, consumed = 0;

  spawn([](Producer& p, int* n) -> Co<void> {
    for (std::uint64_t i = 0; i < 32; ++i) {
      co_await p.enqueue1(i);
      ++*n;
    }
  }(prod, &produced));
  spawn([](Consumer& c, SimThread t, int* n) -> Co<void> {
    co_await t.compute(20000);  // slow consumer start: queue must fill
    for (int i = 0; i < 32; ++i) {
      co_await c.dequeue1();
      ++*n;
    }
  }(cons, small.thread_on(1), &consumed));
  small.run();
  EXPECT_EQ(produced, 32);
  EXPECT_EQ(consumed, 32);
  EXPECT_GT(prod.retries(), 0u);  // producer actually hit back-pressure
  EXPECT_GT(small.vlrd().stats().push_nacks, 0u);
}

TEST_F(VlQueueFixture, NoSharedCoherentStateBetweenEndpoints) {
  // The headline property: a VL transfer causes no snoops between producer
  // and consumer beyond their initial private-line fills.
  const QueueHandle q = lib.open("q");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(1));

  // Warm up one full circular-buffer revolution on both endpoints so every
  // user-space line is resident before measuring.
  spawn([](Producer& p) -> Co<void> {
    for (std::uint64_t i = 0; i < 8; ++i) co_await p.enqueue1(i);
  }(prod));
  spawn([](Consumer& c) -> Co<void> {
    for (int i = 0; i < 8; ++i) (void)co_await c.dequeue1();
  }(cons));
  m.run();

  const auto base = m.mem().stats();
  spawn([](Producer& p) -> Co<void> {
    for (std::uint64_t i = 0; i < 50; ++i) co_await p.enqueue1(i);
  }(prod));
  spawn([](Consumer& c) -> Co<void> {
    for (int i = 0; i < 50; ++i) (void)co_await c.dequeue1();
  }(cons));
  m.run();
  const auto d = m.mem().stats().diff(base);
  EXPECT_EQ(d.snoops, 0u);         // zero coherence transactions
  EXPECT_EQ(d.invalidations, 0u);
  EXPECT_EQ(d.upgrades, 0u);
  EXPECT_EQ(d.mem_txns(), 0u);     // data never left the interconnect
  EXPECT_EQ(d.injections, 50u);
}

TEST_F(VlQueueFixture, TryDequeueReturnsNulloptWhenEmpty) {
  const QueueHandle q = lib.open("q");
  auto cons = lib.make_consumer(q, m.thread_on(1));
  bool got_value = true;
  spawn([](Consumer& c, bool* got) -> Co<void> {
    auto v = co_await c.try_dequeue(/*poll_budget=*/4);
    *got = v.has_value();
  }(cons, &got_value));
  m.run();
  EXPECT_FALSE(got_value);
}

}  // namespace
}  // namespace vl::runtime
