// Registry unit tests: the three entry kinds (owned counters, links,
// gauges), pointer stability of counter handles across growth, idempotent
// registration, the StatSet snapshot/merge bridge, and clear_readers().

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace vl::obs {
namespace {

TEST(Registry, OwnedCounterRoundTrip) {
  Registry reg;
  Counter& c = reg.counter("vlrd.pushes");
  EXPECT_EQ(reg.value("vlrd.pushes"), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.get(), 42u);
  EXPECT_EQ(reg.value("vlrd.pushes"), 42u);
  c.reset();
  EXPECT_EQ(reg.value("vlrd.pushes"), 0u);
}

TEST(Registry, CounterRegistrationIsIdempotent) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, CounterHandlesArePointerStable) {
  Registry reg;
  std::vector<Counter*> handles;
  for (int i = 0; i < 1000; ++i)
    handles.push_back(&reg.counter("c" + std::to_string(i)));
  // Registering 1000 more cells must not move any earlier cell.
  for (int i = 1000; i < 2000; ++i) reg.counter("c" + std::to_string(i));
  for (int i = 0; i < 1000; ++i) {
    handles[static_cast<std::size_t>(i)]->inc(
        static_cast<std::uint64_t>(i) + 1);
    EXPECT_EQ(reg.value("c" + std::to_string(i)),
              static_cast<std::uint64_t>(i) + 1);
  }
}

TEST(Registry, LinksReadLiveFields) {
  Registry reg;
  std::uint64_t wide = 7;
  std::uint32_t narrow = 3;
  reg.link("mem.hits", &wide);
  reg.link32("caf.used", &narrow);
  EXPECT_EQ(reg.value("mem.hits"), 7u);
  EXPECT_EQ(reg.value("caf.used"), 3u);
  wide = 100;
  narrow = 50;
  EXPECT_EQ(reg.value("mem.hits"), 100u);
  EXPECT_EQ(reg.value("caf.used"), 50u);
}

TEST(Registry, GaugesEvaluateAtReadTime) {
  Registry reg;
  std::uint64_t a = 1, b = 2;
  reg.gauge("sum", [&] { return a + b; });
  EXPECT_EQ(reg.value("sum"), 3u);
  a = 10;
  EXPECT_EQ(reg.value("sum"), 12u);
}

TEST(Registry, SnapshotExportsToStatSet) {
  Registry reg;
  reg.counter("b.two").inc(2);
  reg.counter("a.one").inc(1);
  std::uint64_t live = 9;
  reg.link("c.three", &live);
  const StatSet s = reg.snapshot("dev.");
  EXPECT_EQ(s.get("dev.a.one"), 1u);
  EXPECT_EQ(s.get("dev.b.two"), 2u);
  EXPECT_EQ(s.get("dev.c.three"), 9u);
  // A later snapshot sees later values — the snapshot is a copy, not a view.
  live = 10;
  EXPECT_EQ(s.get("dev.c.three"), 9u);
  EXPECT_EQ(reg.snapshot("dev.").get("dev.c.three"), 10u);
}

TEST(Registry, MergeIntoFoldsAcrossRegistries) {
  // The sharded engine's post-join pattern: one StatSet accumulating every
  // shard's snapshot.
  Registry shard0, shard1;
  shard0.counter("vlrd.pushes").inc(5);
  shard1.counter("vlrd.pushes").inc(7);
  StatSet total = shard0.snapshot();
  total.merge(shard1.snapshot());
  EXPECT_EQ(total.get("vlrd.pushes"), 12u);
}

TEST(Registry, ClearReadersDropsLinksAndGaugesOnly) {
  Registry reg;
  reg.counter("owned").inc(1);
  std::uint64_t live = 2;
  reg.link("linked", &live);
  reg.gauge("derived", [] { return std::uint64_t{3}; });
  EXPECT_EQ(reg.size(), 3u);
  reg.clear_readers();
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.contains("owned"));
  EXPECT_FALSE(reg.contains("linked"));
  EXPECT_FALSE(reg.contains("derived"));
  EXPECT_EQ(reg.value("owned"), 1u);
}

}  // namespace
}  // namespace vl::obs
