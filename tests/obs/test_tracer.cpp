// Tracer unit tests: buffer-per-pid management, lane helpers, and the
// Chrome-trace JSON shape (metadata, B/E/i records, args).

#include <gtest/gtest.h>

#include <string>

#include "obs/tracer.hpp"

namespace vl::obs {
namespace {

TEST(Tracer, ThreadTidLanesAreUniquePerCoroutine) {
  EXPECT_EQ(thread_tid(0, 0), 0u);
  EXPECT_EQ(thread_tid(0, 1), 1u);
  EXPECT_EQ(thread_tid(1, 0), kTidStride);
  EXPECT_EQ(thread_tid(7, 3), 7u * kTidStride + 3u);
  // Device lane never collides with a sim-thread lane on a 16-core machine.
  EXPECT_GT(kDeviceTid, thread_tid(12, kTidStride - 1));
}

TEST(Tracer, BufferPerPidIsReferenceStable) {
  Tracer tr;
  TraceBuffer& b0 = tr.buffer(0);
  b0.begin(1, 0, "sim", "park");
  // Creating later pids (including a gap) must not move buffer 0.
  TraceBuffer& b3 = tr.buffer(3);
  b3.instant(2, 0, "vlrd", "inject");
  EXPECT_EQ(&b0, &tr.buffer(0));
  b0.end(5, 0, "sim", "park");
  EXPECT_EQ(tr.buffer(0).size(), 2u);
  EXPECT_EQ(tr.total_events(), 3u);
}

TEST(Tracer, JsonShape) {
  Tracer tr;
  tr.set_process_name(0, "machine");
  TraceBuffer& b = tr.buffer(0);
  b.begin(10, 5, "chan", "send", "n", 8);
  b.end(20, 5, "chan", "send");
  b.instant(15, kDeviceTid, "vlrd", "fetch_nack", "sqi", 3);
  const std::string j = tr.json();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"process_name\""), std::string::npos);
  EXPECT_NE(j.find("\"machine\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"args\":{\"n\":8}"), std::string::npos);
  EXPECT_NE(j.find("\"args\":{\"sqi\":3}"), std::string::npos);
}

TEST(Tracer, EmptyTracerStillEmitsValidDocument) {
  Tracer tr;
  const std::string j = tr.json();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(tr.total_events(), 0u);
}

}  // namespace
}  // namespace vl::obs
