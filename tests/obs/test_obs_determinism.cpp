// The observability layer's load-bearing invariant: observation never
// perturbs the simulation. A run with a Timeline sampling every epoch and a
// Tracer recording every hook must execute the exact same event sequence as
// a run with neither — byte-identical per-tenant CSV, identical event
// counts, identical per-shard digests. And the timeline must be *correct*:
// its final epoch's cumulative series equal the end-of-run ScenarioMetrics
// the engines compute independently.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "obs/hooks.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "squeue/factory.hpp"
#include "traffic/engine.hpp"
#include "traffic/sharded_engine.hpp"

namespace vl::traffic {
namespace {

using squeue::Backend;

double class_p99(const ScenarioMetrics& m, QosClass cls) {
  for (const auto& c : m.by_class())
    if (c.cls == cls)
      return static_cast<double>(c.agg.latency.percentile(99));
  return -1.0;
}

ClassAgg find_class(const ScenarioMetrics& m, QosClass cls) {
  for (auto& c : m.by_class())
    if (c.cls == cls) return c;
  ADD_FAILURE() << "class " << to_string(cls) << " absent";
  return {};
}

TEST(ObsDeterminism, ClassicEngineByteIdenticalWithObsOnAndOff) {
  const ScenarioSpec* spec = find_scenario("qos-incast");
  ASSERT_NE(spec, nullptr);

  const EngineResult plain = run_spec(*spec, Backend::kVl, 42);

  obs::Timeline tl;
  obs::Tracer tr;
  obs::RunHooks hooks;
  hooks.timeline = &tl;
  hooks.sample_every = 5000;
  hooks.tracer = &tr;
  const EngineResult observed = run_spec(*spec, Backend::kVl, 42, 1, &hooks);

  // Same events, same simulated duration, same CSV bytes.
  EXPECT_EQ(observed.events, plain.events);
  EXPECT_EQ(observed.metrics.ticks, plain.metrics.ticks);
  EXPECT_EQ(observed.csv(), plain.csv());

  // The timeline sampled something and its final (cumulative) epoch agrees
  // with the independently computed end-of-run metrics.
  ASSERT_GT(tl.size(), 0u);
  EXPECT_EQ(tl.last("eq.executed"), static_cast<double>(observed.events));
  for (const auto& c : observed.metrics.by_class()) {
    const std::string base = std::string("class.") + to_string(c.cls) + ".";
    EXPECT_EQ(tl.last(base + "delivered"),
              static_cast<double>(c.agg.delivered));
    EXPECT_EQ(tl.last(base + "sent"), static_cast<double>(c.agg.sent));
    EXPECT_EQ(tl.last(base + "p99"),
              static_cast<double>(c.agg.latency.percentile(99)));
    EXPECT_NEAR(tl.last(base + "slo_att_pct"), c.slo_attained_pct(), 1e-9);
  }

  // The trace recorded spans and every B has a matching E per lane.
  ASSERT_GT(tr.total_events(), 0u);
  std::map<std::uint32_t, int> depth;
  for (const auto& ev : tr.buffer(0).events()) {
    if (ev.ph == 'B') ++depth[ev.tid];
    if (ev.ph == 'E') {
      --depth[ev.tid];
      EXPECT_GE(depth[ev.tid], 0) << "E without open B in lane " << ev.tid;
    }
  }
  for (const auto& [tid, d] : depth)
    EXPECT_EQ(d, 0) << "unclosed span in lane " << tid;
}

TEST(ObsDeterminism, ShardedEngineDigestsIdenticalWithObsOnAndOff) {
  const ScenarioSpec* spec = find_scenario("shard-diurnal");
  ASSERT_NE(spec, nullptr);

  ShardedOptions opts;
  opts.shards = 4;
  opts.population = 256;
  opts.messages = 6000;  // Keep the tier-1 run small.
  const ShardedResult plain = run_sharded(*spec, Backend::kVl, 42, opts);

  obs::Timeline tl;
  obs::Tracer tr;
  obs::RunHooks hooks;
  hooks.timeline = &tl;
  hooks.tracer = &tr;
  ShardedOptions obs_opts = opts;
  obs_opts.obs = &hooks;
  const ShardedResult observed =
      run_sharded(*spec, Backend::kVl, 42, obs_opts);

  // The determinism witness: every shard's event-stream digest unchanged.
  EXPECT_EQ(observed.shard_digests, plain.shard_digests);
  EXPECT_EQ(observed.shard_delivered, plain.shard_delivered);
  EXPECT_EQ(observed.engine.events, plain.engine.events);
  EXPECT_EQ(observed.engine.csv(), plain.engine.csv());
  EXPECT_EQ(observed.epochs, plain.epochs);

  // At least one timeline epoch per lookahead barrier (the hook also runs
  // on straggler/drain iterations) plus the final cumulative sample, and
  // the final epoch matches the merged metrics.
  ASSERT_GT(tl.size(), 0u);
  EXPECT_GE(tl.epochs(), observed.epochs + 1);
  EXPECT_EQ(tl.last("eq.executed"),
            static_cast<double>(observed.engine.events));
  const ClassAgg bulk = find_class(observed.engine.metrics, QosClass::kBulk);
  EXPECT_EQ(tl.last("class.bulk.delivered"),
            static_cast<double>(bulk.agg.delivered));
  EXPECT_EQ(tl.last("class.bulk.p99"), class_p99(observed.engine.metrics,
                                                 QosClass::kBulk));

  // The tracer saw every shard (pids 0..3) plus the barrier lane (pid 4).
  ASSERT_GT(tr.total_events(), 0u);
  EXPECT_GT(tr.buffer(4).size(), 0u);  // barrier epochs traced

  // Device stats merged across shards: the registry snapshot is present
  // and its executed-events gauge agrees with the summed kernel counter.
  EXPECT_EQ(observed.engine.device_stats.get("eq.executed"),
            observed.engine.events);
}

}  // namespace
}  // namespace vl::traffic
