// Timeline unit tests: sampling, ring eviction past the cap, last(),
// detach(), and the CSV/JSON export formats.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/timeline.hpp"

namespace vl::obs {
namespace {

TEST(Timeline, SampleEvaluatesEverySeries) {
  Timeline tl;
  std::uint64_t counter = 0;
  tl.add_series("count", [&] { return static_cast<double>(counter); });
  tl.add_series("doubled", [&] { return static_cast<double>(2 * counter); });
  counter = 3;
  tl.sample(100);
  counter = 5;
  tl.sample(200);
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl.at(0).tick, 100u);
  EXPECT_EQ(tl.at(0).values, (std::vector<double>{3.0, 6.0}));
  EXPECT_EQ(tl.at(1).tick, 200u);
  EXPECT_EQ(tl.at(1).values, (std::vector<double>{5.0, 10.0}));
  EXPECT_EQ(tl.last("count"), 5.0);
  EXPECT_EQ(tl.last("doubled"), 10.0);
  EXPECT_EQ(tl.last("nope"), 0.0);
}

TEST(Timeline, RingEvictsOldestPastCap) {
  Timeline tl(3);
  int x = 0;
  tl.add_series("x", [&] { return static_cast<double>(x); });
  for (x = 0; x < 10; ++x) tl.sample(static_cast<Tick>(x) * 10);
  EXPECT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl.epochs(), 10u);
  EXPECT_EQ(tl.dropped(), 7u);
  // Absolute epoch indices survive eviction: the retained window is 7..9.
  EXPECT_EQ(tl.at(0).index, 7u);
  EXPECT_EQ(tl.at(2).index, 9u);
  EXPECT_EQ(tl.last("x"), 9.0);
}

TEST(Timeline, DetachDropsClosuresKeepsSamples) {
  Timeline tl;
  int live = 7;
  tl.add_series("x", [&] { return static_cast<double>(live); });
  tl.sample(1);
  tl.detach();
  // After detach the closure (and its referent) may die; retained samples
  // and exports must still work.
  EXPECT_EQ(tl.size(), 1u);
  EXPECT_EQ(tl.last("x"), 7.0);
  EXPECT_NE(tl.csv().find("0,1,x,7.000"), std::string::npos);
}

TEST(Timeline, CsvIsLongFormat) {
  Timeline tl;
  tl.add_series("a", [] { return 1.5; });
  tl.add_series("b", [] { return 2.0; });
  tl.sample(10);
  tl.sample(20);
  EXPECT_EQ(tl.csv(),
            "epoch,tick,series,value\n"
            "0,10,a,1.500\n"
            "0,10,b,2.000\n"
            "1,20,a,1.500\n"
            "1,20,b,2.000\n");
}

TEST(Timeline, JsonCarriesSeriesAndEpochs) {
  Timeline tl;
  tl.add_series("a", [] { return 1.0; });
  tl.sample(5);
  const std::string j = tl.json();
  EXPECT_NE(j.find("\"series\""), std::string::npos);
  EXPECT_NE(j.find("\"a\""), std::string::npos);
  EXPECT_NE(j.find("\"tick\": 5"), std::string::npos);
}

}  // namespace
}  // namespace vl::obs
