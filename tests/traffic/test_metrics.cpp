// LogHistogram correctness: bucket math, bounded relative error against
// the exact sorted-sample percentiles, merge/counter conservation, and the
// CSV row shape the scenario runner emits.

#include "traffic/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace vl::traffic {
namespace {

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < LogHistogram::kLinearMax; ++v) {
    EXPECT_EQ(LogHistogram::bucket_index(v), v);
    EXPECT_EQ(LogHistogram::bucket_upper(static_cast<std::uint32_t>(v)), v);
  }
}

TEST(LogHistogram, BucketUpperIsTightBound) {
  // Every value maps to a bucket whose upper edge is >= the value and
  // within 1/32 relative error.
  Xoshiro256 rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.next() >> (rng.below(56));
    const std::uint32_t b = LogHistogram::bucket_index(v);
    const std::uint64_t up = LogHistogram::bucket_upper(b);
    ASSERT_GE(up, v);
    ASSERT_LE(static_cast<double>(up - v),
              static_cast<double>(v) / 32.0 + 1.0)
        << "v=" << v;
    // Monotone: the next bucket's upper edge is strictly larger (skip at
    // the final bucket, whose edge is already the maximum value).
    if (up != ~std::uint64_t{0})
      ASSERT_GT(LogHistogram::bucket_upper(b + 1), up);
  }
}

TEST(LogHistogram, CountsAndMomentsConserve) {
  LogHistogram h;
  h.record(3);
  h.record(70, 2);
  h.record(1'000'000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 1'000'000u);
  EXPECT_NEAR(h.mean(), (3.0 + 70 + 70 + 1e6) / 4, 1e-6);
}

TEST(LogHistogram, EmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, PercentileAgreesWithExactSort) {
  // The satellite check: log-bucketed percentiles vs exact store-and-sort
  // percentiles on a heavy-tailed sample, within the 1/32 design error.
  LogHistogram h;
  Samples exact;
  Xoshiro256 rng(2024);
  for (int i = 0; i < 50000; ++i) {
    // Log-uniform over ~[1, e^12) ≈ [1, 162k): stresses many octaves.
    const double v = std::exp(rng.uniform() * 12.0);
    const auto t = static_cast<std::uint64_t>(v);
    h.record(t);
    exact.record(static_cast<double>(t));
  }
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double e = exact.percentile(p);
    const double g = static_cast<double>(h.percentile(p));
    EXPECT_NEAR(g, e, e * 0.05 + 1.0) << "p" << p;
  }
}

TEST(LogHistogram, PercentilesAreMonotone) {
  LogHistogram h;
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) h.record(rng.below(1 << 20));
  std::uint64_t prev = 0;
  for (double p : {0.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0}) {
    const std::uint64_t v = h.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_EQ(h.percentile(100), h.max());
}

TEST(LogHistogram, MergeMatchesCombinedRecording) {
  LogHistogram a, b, both;
  Xoshiro256 rng(9);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(1 << 16);
    (i % 2 ? a : b).record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.max(), both.max());
  for (double p : {50.0, 95.0, 99.0})
    EXPECT_EQ(a.percentile(p), both.percentile(p));
}

TEST(ScenarioMetrics, CsvRowsCoverTenantsPlusAggregate) {
  ScenarioMetrics m;
  m.ns = 1e6;
  for (const char* name : {"gold", "bronze"}) {
    TenantMetrics t;
    t.tenant = name;
    t.generated = 10;
    t.sent = 8;
    t.delivered = 8;
    t.dropped = 2;
    t.latency.record(100, 8);
    m.tenants.push_back(std::move(t));
  }
  const auto rows = m.csv_rows();
  ASSERT_EQ(rows.size(), 3u);  // 2 tenants + "*" aggregate
  ASSERT_EQ(rows[0].size(), ScenarioMetrics::csv_header().size());
  EXPECT_EQ(rows[2][0], "*");
  EXPECT_EQ(rows[2][1], "-");   // mixed-class aggregate carries no class
  EXPECT_EQ(rows[2][4], "20");  // aggregate generated
  EXPECT_EQ(m.total_generated(), 20u);
  EXPECT_EQ(m.total_delivered(), 16u);
  EXPECT_EQ(m.total_dropped(), 4u);
}

TEST(ScenarioMetrics, SingleTenantHasNoAggregateRow) {
  ScenarioMetrics m;
  TenantMetrics t;
  t.tenant = "only";
  m.tenants.push_back(std::move(t));
  EXPECT_EQ(m.csv_rows().size(), 1u);
}

}  // namespace
}  // namespace vl::traffic
