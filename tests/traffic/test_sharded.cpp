// Sharded-simulation coverage: consistent-hash ring stability and
// rebalancing, conservative-lookahead safety, cross-shard metric merging,
// and the determinism contract — fixed seed reproduces byte-identical
// per-shard event streams, sequential and threaded stepping agree exactly,
// and delivered counts are equal across shard counts.

#include "traffic/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/sharded.hpp"
#include "traffic/shard_router.hpp"

namespace vl::traffic {
namespace {

using squeue::Backend;

// --- ShardRouter -------------------------------------------------------------

TEST(ShardRouter, RoutesWholePopulationInRange) {
  ShardRouter r(4);
  for (std::uint64_t t = 0; t < 10000; ++t) {
    const int s = r.shard_for(t);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
  }
}

TEST(ShardRouter, SpreadIsRoughlyUniform) {
  ShardRouter r(8);
  const auto census = r.census(80000);
  for (const std::uint64_t n : census) {
    EXPECT_GT(n, 80000u / 8 / 3) << "a shard is starved";
    EXPECT_LT(n, 80000u / 8 * 3) << "a shard is overloaded";
  }
}

TEST(ShardRouter, AddingAShardMovesABoundedFraction) {
  // Consistent hashing's defining property: growing S=4 -> 5 may only
  // reassign the tenants the new shard captures — well under 2/S of the
  // population (mod-hash would move ~4/5 of them).
  constexpr std::uint64_t kPop = 20000;
  ShardRouter r(4);
  std::vector<int> before(kPop);
  for (std::uint64_t t = 0; t < kPop; ++t) before[t] = r.shard_for(t);

  r.add_shard();
  std::uint64_t moved = 0;
  for (std::uint64_t t = 0; t < kPop; ++t) {
    const int now = r.shard_for(t);
    if (now != before[t]) {
      ++moved;
      EXPECT_EQ(now, 4) << "a move must land on the new shard";
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, 2 * kPop / 4);
}

TEST(ShardRouter, RebalanceMovesTenantsOffTheHotShard) {
  constexpr std::uint64_t kPop = 10000;
  ShardRouter r(4);
  const auto before = r.census(kPop);

  // Shard 2 is 8x hotter than the rest; 1 is (tied) coldest -> moves go
  // to the lowest-indexed coldest shard.
  std::vector<std::uint64_t> load = {100, 100, 800, 100};
  const std::size_t moved = r.rebalance(load, kPop);
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(r.overrides(), moved);

  const auto after = r.census(kPop);
  EXPECT_EQ(after[2], before[2] - moved);
  EXPECT_EQ(after[0], before[0] + moved);
  // Total is conserved.
  EXPECT_EQ(after[0] + after[1] + after[2] + after[3], kPop);
}

TEST(ShardRouter, RebalanceIsANoOpWhenBalanced) {
  ShardRouter r(4);
  std::vector<std::uint64_t> load = {100, 110, 95, 105};
  EXPECT_EQ(r.rebalance(load, 10000), 0u);
  EXPECT_EQ(r.overrides(), 0u);
}

// --- ShardedSim lookahead ----------------------------------------------------

TEST(ShardedSim, CrossShardDeliveryNeverBeatsTheLinkLatency) {
  constexpr Tick kLat = 100;
  sim::EventQueue q0, q1;
  sim::ShardedSim ssim(kLat, 1);
  ssim.add_shard(q0);
  ssim.add_shard(q1);

  // Shard 0 posts to shard 1 from several source ticks; each delivery
  // must observe dst.now() == send_tick + kLat, never earlier.
  std::vector<std::pair<Tick, Tick>> seen;  // (send, arrive)
  for (const Tick t : {Tick{3}, Tick{40}, Tick{41}, Tick{500}})
    q0.schedule_at(t, [&ssim, &q0, &q1, &seen, t] {
      ssim.post(0, 1, [&q1, &seen, t] { seen.emplace_back(t, q1.now()); });
      (void)q0;
    });
  ssim.run();

  ASSERT_EQ(seen.size(), 4u);
  for (const auto& [send, arrive] : seen) EXPECT_EQ(arrive, send + kLat);
  EXPECT_EQ(ssim.stats().messages, 4u);
  EXPECT_GE(ssim.stats().epochs, 1u);
}

TEST(ShardedSim, LinkWindowBoundsInFlightPosts) {
  sim::EventQueue q0, q1;
  sim::ShardedSim ssim(/*lookahead=*/10, 1);
  ssim.add_shard(q0);
  ssim.add_shard(q1);
  ssim.set_link_window(2);

  int refused = 0;
  q0.schedule_at(1, [&] {
    for (int i = 0; i < 5; ++i) {
      if (ssim.can_post(0, 1))
        ssim.post(0, 1, [] {});
      else
        ++refused;
    }
  });
  ssim.run();
  EXPECT_EQ(refused, 3);
  EXPECT_EQ(ssim.stats().messages, 2u);
  EXPECT_EQ(ssim.stats().window_stalls, 3u);
}

// --- ScenarioMetrics::merge --------------------------------------------------

TEST(ScenarioMetricsMerge, MatchesByNameAndAppendsStrangers) {
  ScenarioMetrics a, b;
  TenantMetrics web;
  web.tenant = "web";
  web.generated = web.sent = web.delivered = 10;
  web.blocked_ticks = 100;
  web.latency.record(50, 10);
  a.tenants = {web};
  a.ticks = 1000;
  a.ns = 500.0;

  TenantMetrics web2 = web;
  web2.blocked_ticks = 40;
  web2.latency = LogHistogram();
  web2.latency.record(200, 10);
  TenantMetrics bulk;
  bulk.tenant = "bulk";
  bulk.generated = bulk.sent = bulk.delivered = 5;
  b.tenants = {web2, bulk};
  b.ticks = 1500;
  b.ns = 750.0;
  DepthSeries d;
  d.channel = "sh1c0";
  d.samples = 3;
  b.depths = {d};

  a.merge(b);
  ASSERT_EQ(a.tenants.size(), 2u);
  EXPECT_EQ(a.tenants[0].tenant, "web");
  EXPECT_EQ(a.tenants[0].generated, 20u);
  EXPECT_EQ(a.tenants[0].blocked_ticks, 140u);
  EXPECT_EQ(a.tenants[0].latency.count(), 20u);  // histogram merged
  EXPECT_EQ(a.tenants[0].latency.max(), 200u);
  EXPECT_EQ(a.tenants[1].tenant, "bulk");
  ASSERT_EQ(a.depths.size(), 1u);
  EXPECT_EQ(a.depths[0].channel, "sh1c0");
  EXPECT_EQ(a.ticks, 1500u);  // max, not sum: shards share the clock
  EXPECT_DOUBLE_EQ(a.ns, 750.0);
}

// --- run_sharded -------------------------------------------------------------

ShardedOptions small_opts(int shards, int threads = 1) {
  ShardedOptions o;
  o.shards = shards;
  o.sim_threads = threads;
  o.population = 4000;
  o.messages = 2048;
  return o;
}

TEST(ShardedEngine, ConservesAndDeliversEqualWorkAcrossShardCounts) {
  const auto r1 = run_sharded(*find_scenario("shard-diurnal"), Backend::kVl,
                              42, small_opts(1));
  const auto r4 = run_sharded(*find_scenario("shard-diurnal"), Backend::kVl,
                              42, small_opts(4));

  // Equal global work regardless of shard count.
  EXPECT_EQ(r1.engine.metrics.total_delivered(), 2048u);
  EXPECT_EQ(r4.engine.metrics.total_delivered(), 2048u);
  EXPECT_EQ(r1.cross_shard, 0u);
  EXPECT_GT(r4.cross_shard, 0u);  // most traffic crosses links at S=4
  EXPECT_GE(r4.epochs, 1u);

  // Conservation per class, globally (generated == sent == delivered:
  // sharded runs shed nothing).
  for (const auto& r : {r1, r4}) {
    std::uint64_t gen = 0, sent = 0, del = 0, lat = 0;
    for (const auto& t : r.engine.metrics.tenants) {
      gen += t.generated;
      sent += t.sent;
      del += t.delivered;
      lat += t.latency.count();
    }
    EXPECT_EQ(gen, 2048u);
    EXPECT_EQ(sent, gen);
    EXPECT_EQ(del, sent);
    EXPECT_EQ(lat, del);
  }
  ASSERT_EQ(r4.shard_delivered.size(), 4u);
  std::uint64_t by_shard = 0;
  for (const std::uint64_t n : r4.shard_delivered) by_shard += n;
  EXPECT_EQ(by_shard, 2048u);
}

TEST(ShardedEngine, FixedSeedReproducesPerShardStreamsExactly) {
  const auto a = run_sharded(*find_scenario("shard-diurnal"), Backend::kVl,
                             42, small_opts(4));
  const auto b = run_sharded(*find_scenario("shard-diurnal"), Backend::kVl,
                             42, small_opts(4));
  EXPECT_EQ(a.shard_digests, b.shard_digests);
  EXPECT_EQ(a.shard_delivered, b.shard_delivered);
  EXPECT_EQ(a.engine.events, b.engine.events);
  EXPECT_EQ(a.engine.csv(), b.engine.csv());

  const auto c = run_sharded(*find_scenario("shard-diurnal"), Backend::kVl,
                             43, small_opts(4));
  EXPECT_NE(a.shard_digests, c.shard_digests);  // the seed matters
}

TEST(ShardedEngine, ThreadedSteppingMatchesSequentialByteForByte) {
  const auto seq = run_sharded(*find_scenario("shard-diurnal"), Backend::kVl,
                               7, small_opts(4, /*threads=*/1));
  const auto thr = run_sharded(*find_scenario("shard-diurnal"), Backend::kVl,
                               7, small_opts(4, /*threads=*/2));
  EXPECT_EQ(seq.shard_digests, thr.shard_digests);
  EXPECT_EQ(seq.shard_delivered, thr.shard_delivered);
  EXPECT_EQ(seq.engine.events, thr.engine.events);
  EXPECT_EQ(seq.epochs, thr.epochs);
  EXPECT_EQ(seq.engine.csv(), thr.engine.csv());
}

TEST(ShardedEngine, RunsOnASoftwareBackendToo) {
  const auto r = run_sharded(*find_scenario("shard-diurnal"), Backend::kBlfq,
                             11, small_opts(2));
  EXPECT_EQ(r.engine.metrics.total_delivered(), 2048u);
  EXPECT_GT(r.cross_shard, 0u);
}

TEST(ShardedEngine, RejectsUnshardableSpecs) {
  const ScenarioSpec& ok = *find_scenario("shard-diurnal");

  ShardedOptions opts = small_opts(2);
  opts.population = 0;  // no ring
  ScenarioSpec no_pop = ok;
  no_pop.sharding.population = 0;
  EXPECT_THROW(run_sharded(no_pop, Backend::kBlfq, 1, opts),
               std::invalid_argument);

  ScenarioSpec fan_in = ok;  // topology without a channel per consumer
  fan_in.topology = Topology::kFanIn;
  EXPECT_THROW(run_sharded(fan_in, Backend::kBlfq, 1, small_opts(2)),
               std::invalid_argument);

  ShardedOptions too_many = small_opts(ok.consumers + 1);
  EXPECT_THROW(run_sharded(ok, Backend::kBlfq, 1, too_many),
               std::invalid_argument);
}

TEST(ShardedEngine, RebalanceMovesTenantsUnderSkew) {
  // A hot shard (ingress + queue backlog) must trigger overload moves when
  // the spec opts in. Skew the ring by giving the run few shards and a
  // bursty class; the check is only that the mechanism engages and the run
  // still conserves.
  ScenarioSpec spec = *find_scenario("shard-diurnal");
  spec.sharding.rebalance = true;
  ShardedOptions o = small_opts(2);
  o.messages = 4096;
  const auto r = run_sharded(spec, Backend::kBlfq, 42, o);
  EXPECT_EQ(r.engine.metrics.total_delivered(), 4096u);
  // Rebalancing may or may not fire depending on the load pattern; the
  // deterministic contract still holds either way.
  const auto r2 = run_sharded(spec, Backend::kBlfq, 42, o);
  EXPECT_EQ(r.rebalanced, r2.rebalanced);
  EXPECT_EQ(r.shard_digests, r2.shard_digests);
}

}  // namespace
}  // namespace vl::traffic
