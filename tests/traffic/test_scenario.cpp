// ScenarioSpec validation, scaling, tenant splitting, and the preset
// registry contract the runner CLI depends on.

#include "traffic/scenario.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace vl::traffic {
namespace {

ScenarioSpec minimal() {
  ScenarioSpec s;
  s.name = "t";
  s.tenants.push_back(TenantSpec{});
  return s;
}

TEST(Scenario, RegistryHasTheDocumentedPresets) {
  for (const char* name :
       {"incast-burst", "diurnal-fanout", "multitenant-mesh",
        "steady-pipeline", "closed-loop-incast", "lossy-incast",
        "qos-incast", "qos-diurnal-mix"}) {
    const ScenarioSpec* s = find_scenario(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->name, name);
    EXPECT_TRUE(validate(*s).empty())
        << name << ": " << validate(*s);
  }
  EXPECT_GE(scenario_names().size(), 8u);
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
}

TEST(Scenario, ValidateAcceptsMinimalSpec) {
  EXPECT_EQ(validate(minimal()), "");
}

TEST(Scenario, ValidateRejectsBadSpecs) {
  auto bad = minimal();
  bad.name = "";
  EXPECT_NE(validate(bad), "");

  bad = minimal();
  bad.producers = 0;
  EXPECT_NE(validate(bad), "");

  bad = minimal();
  bad.tenants.clear();
  EXPECT_NE(validate(bad), "");

  bad = minimal();
  bad.tenants[0].msg_words = 9;
  EXPECT_NE(validate(bad), "");

  bad = minimal();
  bad.tenants[0].share = 0.0;
  EXPECT_NE(validate(bad), "");

  bad = minimal();
  bad.stages = 3;  // stages only meaningful for pipeline
  EXPECT_NE(validate(bad), "");

  bad = minimal();
  bad.topology = Topology::kPipeline;
  bad.stages = 1;
  EXPECT_NE(validate(bad), "");

  bad = minimal();
  bad.producers = 1;
  bad.tenants.push_back(TenantSpec{});  // 2 tenants, 1 producer
  EXPECT_NE(validate(bad), "");

  bad = minimal();
  bad.closed_loop = true;
  bad.window = 0;
  EXPECT_NE(validate(bad), "");
}

TEST(Scenario, ScaledMultipliesMessageCounts) {
  auto s = minimal();
  s.tenants[0].messages_per_producer = 100;
  EXPECT_EQ(scaled(s, 1).tenants[0].messages_per_producer, 100u);
  EXPECT_EQ(scaled(s, 5).tenants[0].messages_per_producer, 500u);
}

TEST(Scenario, TenantSplitConservesProducersAndRespectsShares) {
  ScenarioSpec s = minimal();
  s.producers = 10;
  s.tenants[0].share = 0.7;
  TenantSpec t2;
  t2.share = 0.2;
  TenantSpec t3;
  t3.share = 0.1;
  s.tenants.push_back(t2);
  s.tenants.push_back(t3);

  const auto split = tenant_producer_split(s);
  ASSERT_EQ(split.size(), 3u);
  EXPECT_EQ(std::accumulate(split.begin(), split.end(), 0), 10);
  for (int n : split) EXPECT_GE(n, 1);
  EXPECT_GT(split[0], split[1]);
  EXPECT_GE(split[1], split[2]);
}

TEST(Scenario, TenantSplitGivesEveryTenantOneProducer) {
  ScenarioSpec s = minimal();
  s.producers = 3;
  s.tenants[0].share = 1000.0;
  s.tenants.push_back(TenantSpec{.share = 0.001});
  s.tenants.push_back(TenantSpec{.share = 0.001});
  const auto split = tenant_producer_split(s);
  EXPECT_EQ(split, (std::vector<int>{1, 1, 1}));
}

TEST(Scenario, SplitIsDeterministic) {
  ScenarioSpec s = minimal();
  s.producers = 7;
  s.tenants.push_back(TenantSpec{.share = 1.0});
  EXPECT_EQ(tenant_producer_split(s), tenant_producer_split(s));
}

}  // namespace
}  // namespace vl::traffic
