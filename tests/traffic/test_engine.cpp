// Traffic-engine integration: every registry preset must run green over
// every backend with exact message conservation; runs are deterministic
// (byte-identical CSV) for a fixed seed; queue-depth sampling rides on
// Channel::depth() for all five backends.

#include "traffic/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "squeue/factory.hpp"

namespace vl::traffic {
namespace {

using squeue::Backend;

const char* backend_test_name(const ::testing::TestParamInfo<Backend>& info) {
  switch (info.param) {
    case Backend::kBlfq: return "BLFQ";
    case Backend::kZmq: return "ZMQ";
    case Backend::kVl: return "VL";
    case Backend::kVlIdeal: return "VLideal";
    case Backend::kCaf: return "CAF";
  }
  return "?";
}

class TrafficOverBackend : public ::testing::TestWithParam<Backend> {};

TEST_P(TrafficOverBackend, EveryPresetRunsGreenAndConserves) {
  for (const auto& name : scenario_names()) {
    for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{42}}) {
      const EngineResult r = run_scenario(name, GetParam(), seed);
      const ScenarioMetrics& m = r.metrics;
      EXPECT_GT(m.ticks, 0u) << name;
      EXPECT_GT(m.total_delivered(), 0u) << name;
      ASSERT_EQ(m.tenants.size(), find_scenario(name)->tenants.size())
          << name;
      for (const auto& t : m.tenants) {
        // Conservation: everything generated was either sent or shed, and
        // everything sent arrived (channels are lossless).
        EXPECT_EQ(t.generated, t.sent + t.dropped)
            << name << "/" << t.tenant << " seed " << seed;
        EXPECT_EQ(t.delivered, t.sent)
            << name << "/" << t.tenant << " seed " << seed;
        EXPECT_EQ(t.latency.count(), t.delivered)
            << name << "/" << t.tenant << " seed " << seed;
        EXPECT_GT(t.latency.max(), 0u) << name << "/" << t.tenant;
      }
      // The depth sampler observed every channel at least once.
      ASSERT_FALSE(m.depths.empty()) << name;
      for (const auto& d : m.depths) EXPECT_GE(d.samples, 1u) << name;
    }
  }
}

TEST_P(TrafficOverBackend, DepthReflectsQueuedMessages) {
  // Cross-backend Channel::depth() contract: after K accepted sends with
  // no consumer, depth() reports K; after draining, 0.
  const Backend b = GetParam();
  runtime::Machine m(squeue::config_for(b));
  squeue::ChannelFactory f(m, b);
  auto ch = f.make("depth-probe");
  constexpr std::uint64_t kMsgs = 8;

  sim::spawn([](squeue::Channel& q, sim::SimThread t) -> sim::Co<void> {
    for (std::uint64_t i = 0; i < kMsgs; ++i) co_await q.send1(t, i);
  }(*ch, m.thread_on(0)));
  m.run();
  EXPECT_EQ(ch->depth(), kMsgs);

  sim::spawn([](squeue::Channel& q, sim::SimThread t) -> sim::Co<void> {
    for (std::uint64_t i = 0; i < kMsgs; ++i) (void)co_await q.recv1(t);
  }(*ch, m.thread_on(1)));
  m.run();
  EXPECT_EQ(ch->depth(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TrafficOverBackend,
                         ::testing::Values(Backend::kBlfq, Backend::kZmq,
                                           Backend::kVl, Backend::kVlIdeal,
                                           Backend::kCaf),
                         backend_test_name);

TEST(TrafficEngine, FixedSeedIsByteDeterministic) {
  const std::string a = run_scenario("incast-burst", Backend::kVl, 42).csv();
  const std::string b = run_scenario("incast-burst", Backend::kVl, 42).csv();
  EXPECT_EQ(a, b);
}

TEST(TrafficEngine, SeedChangesTheRun) {
  const std::string a = run_scenario("incast-burst", Backend::kBlfq, 1).csv();
  const std::string b = run_scenario("incast-burst", Backend::kBlfq, 2).csv();
  EXPECT_NE(a, b);
}

TEST(TrafficEngine, OverloadShedsAtTheConfiguredDepth) {
  const EngineResult r = run_scenario("lossy-incast", Backend::kBlfq, 7);
  const auto& t = r.metrics.tenants.at(0);
  EXPECT_GT(t.dropped, 0u);  // offered >> service; shedding must kick in
  EXPECT_GT(t.delivered, 0u);
  EXPECT_EQ(t.generated, t.sent + t.dropped);
}

TEST(TrafficEngine, ClosedLoopBoundsOutstandingLatency) {
  // With a window of 4 and one bottleneck consumer, queue depth can never
  // exceed producers * window.
  const EngineResult r = run_scenario("closed-loop-incast", Backend::kBlfq, 3);
  const auto* spec = find_scenario("closed-loop-incast");
  const double bound =
      static_cast<double>(spec->producers) * spec->window;
  ASSERT_FALSE(r.metrics.depths.empty());
  EXPECT_LE(r.metrics.depths[0].depth.max(), bound);
  EXPECT_EQ(r.metrics.tenants[0].delivered,
            r.metrics.tenants[0].generated);
}

TEST(TrafficEngine, ScaleMultipliesTraffic) {
  const EngineResult r1 = run_scenario("steady-pipeline", Backend::kBlfq, 5, 1);
  const EngineResult r2 = run_scenario("steady-pipeline", Backend::kBlfq, 5, 2);
  EXPECT_EQ(r2.metrics.total_generated(), 2 * r1.metrics.total_generated());
}

TEST(TrafficEngine, RejectsUnknownAndInvalidScenarios) {
  EXPECT_THROW(run_scenario("nope", Backend::kBlfq, 1), std::invalid_argument);

  runtime::Machine m;
  squeue::ChannelFactory f(m, Backend::kBlfq);
  Engine eng(m, f);
  ScenarioSpec bad;  // no name, no tenants
  EXPECT_THROW(eng.run(bad, 1), std::invalid_argument);
}

TEST(TrafficEngine, CsvHasPrefixColumnsAndStableShape) {
  const EngineResult r = run_scenario("multitenant-mesh", Backend::kZmq, 9);
  const std::string csv = r.csv();
  EXPECT_EQ(csv.find("scenario,backend,seed,scale,tenant"), 0u);
  // 1 header + 3 tenants + 1 aggregate.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 5);
  EXPECT_NE(csv.find("multitenant-mesh,ZMQ,9,1,gold"), std::string::npos);
}

}  // namespace
}  // namespace vl::traffic
