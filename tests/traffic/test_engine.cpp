// Traffic-engine integration: every registry preset must run green over
// every backend with exact message conservation; runs are deterministic
// (byte-identical CSV) for a fixed seed; queue-depth sampling rides on
// Channel::depth() for all five backends.

#include "traffic/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "squeue/factory.hpp"

namespace vl::traffic {
namespace {

using squeue::Backend;

const char* backend_test_name(const ::testing::TestParamInfo<Backend>& info) {
  switch (info.param) {
    case Backend::kBlfq: return "BLFQ";
    case Backend::kZmq: return "ZMQ";
    case Backend::kVl: return "VL";
    case Backend::kVlIdeal: return "VLideal";
    case Backend::kCaf: return "CAF";
  }
  return "?";
}

class TrafficOverBackend : public ::testing::TestWithParam<Backend> {};

TEST_P(TrafficOverBackend, EveryPresetRunsGreenAndConserves) {
  for (const auto& name : scenario_names()) {
    for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{42}}) {
      const EngineResult r = run_scenario(name, GetParam(), seed);
      const ScenarioMetrics& m = r.metrics;
      EXPECT_GT(m.ticks, 0u) << name;
      EXPECT_GT(m.total_delivered(), 0u) << name;
      ASSERT_EQ(m.tenants.size(), find_scenario(name)->tenants.size())
          << name;
      for (const auto& t : m.tenants) {
        // Conservation: everything generated was either sent or shed, and
        // everything sent arrived (channels are lossless).
        EXPECT_EQ(t.generated, t.sent + t.dropped)
            << name << "/" << t.tenant << " seed " << seed;
        EXPECT_EQ(t.delivered, t.sent)
            << name << "/" << t.tenant << " seed " << seed;
        EXPECT_EQ(t.latency.count(), t.delivered)
            << name << "/" << t.tenant << " seed " << seed;
        EXPECT_GT(t.latency.max(), 0u) << name << "/" << t.tenant;
      }
      // The depth sampler observed every channel at least once.
      ASSERT_FALSE(m.depths.empty()) << name;
      for (const auto& d : m.depths) EXPECT_GE(d.samples, 1u) << name;
    }
  }
}

TEST_P(TrafficOverBackend, DepthReflectsQueuedMessages) {
  // Cross-backend Channel::depth() contract: after K accepted sends with
  // no consumer, depth() reports K; after draining, 0.
  const Backend b = GetParam();
  runtime::Machine m(squeue::config_for(b));
  squeue::ChannelFactory f(m, b);
  auto ch = f.make("depth-probe");
  constexpr std::uint64_t kMsgs = 8;

  sim::spawn([](squeue::Channel& q, sim::SimThread t) -> sim::Co<void> {
    for (std::uint64_t i = 0; i < kMsgs; ++i) co_await q.send1(t, i);
  }(*ch, m.thread_on(0)));
  m.run();
  EXPECT_EQ(ch->depth(), kMsgs);

  sim::spawn([](squeue::Channel& q, sim::SimThread t) -> sim::Co<void> {
    for (std::uint64_t i = 0; i < kMsgs; ++i) (void)co_await q.recv1(t);
  }(*ch, m.thread_on(1)));
  m.run();
  EXPECT_EQ(ch->depth(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TrafficOverBackend,
                         ::testing::Values(Backend::kBlfq, Backend::kZmq,
                                           Backend::kVl, Backend::kVlIdeal,
                                           Backend::kCaf),
                         backend_test_name);

TEST(TrafficEngine, FixedSeedIsByteDeterministic) {
  const std::string a = run_scenario("incast-burst", Backend::kVl, 42).csv();
  const std::string b = run_scenario("incast-burst", Backend::kVl, 42).csv();
  EXPECT_EQ(a, b);
}

TEST(TrafficEngine, SeedDeterminismSurvivesParkWakeScheduling) {
  // Kernel-overhaul regression: park/wake and run-queue grants flow
  // through the (tick, seq)-ordered event queue, so two runs of the same
  // seed must agree on everything — final tick, executed kernel events,
  // and per-tenant message counts — on the backends that park the most
  // (ZMQ empty/full/lock waits, VL producer back-pressure).
  for (Backend b : {Backend::kZmq, Backend::kVl, Backend::kCaf}) {
    const EngineResult r1 = run_scenario("incast-burst", b, 7);
    const EngineResult r2 = run_scenario("incast-burst", b, 7);
    EXPECT_EQ(r1.metrics.ticks, r2.metrics.ticks) << squeue::to_string(b);
    EXPECT_EQ(r1.events, r2.events) << squeue::to_string(b);
    EXPECT_EQ(r1.metrics.total_delivered(), r2.metrics.total_delivered());
    ASSERT_EQ(r1.metrics.tenants.size(), r2.metrics.tenants.size());
    for (std::size_t i = 0; i < r1.metrics.tenants.size(); ++i) {
      EXPECT_EQ(r1.metrics.tenants[i].sent, r2.metrics.tenants[i].sent);
      EXPECT_EQ(r1.metrics.tenants[i].blocked_ticks,
                r2.metrics.tenants[i].blocked_ticks);
    }
  }
}

TEST(TrafficEngine, BlockedTicksTrackBackpressure) {
  // incast-burst over ZMQ saturates the high-water mark, so producers
  // spend real simulated time blocked inside send(); the per-tenant
  // blocked-ticks counter must surface that (and dwarf the per-message
  // transfer cost under overload).
  const EngineResult r = run_scenario("incast-burst", Backend::kZmq, 42);
  std::uint64_t blocked = 0, sent = 0;
  for (const auto& t : r.metrics.tenants) {
    blocked += t.blocked_ticks;
    sent += t.sent;
  }
  ASSERT_GT(sent, 0u);
  EXPECT_GT(blocked, 0u);
  // Under saturation the mean send occupancy far exceeds an uncontended
  // ZMQ transfer (~a few hundred ticks of software overhead).
  EXPECT_GT(blocked / sent, 500u);
  // And the CSV carries the column so scenario_runner output exposes it.
  EXPECT_NE(r.csv().find("blocked_ticks"), std::string::npos);
}

TEST(TrafficEngine, SeedChangesTheRun) {
  const std::string a = run_scenario("incast-burst", Backend::kBlfq, 1).csv();
  const std::string b = run_scenario("incast-burst", Backend::kBlfq, 2).csv();
  EXPECT_NE(a, b);
}

TEST(TrafficEngine, OverloadShedsAtTheConfiguredDepth) {
  const EngineResult r = run_scenario("lossy-incast", Backend::kBlfq, 7);
  const auto& t = r.metrics.tenants.at(0);
  EXPECT_GT(t.dropped, 0u);  // offered >> service; shedding must kick in
  EXPECT_GT(t.delivered, 0u);
  EXPECT_EQ(t.generated, t.sent + t.dropped);
}

TEST(TrafficEngine, ClosedLoopBoundsOutstandingLatency) {
  // With a window of 4 and one bottleneck consumer, queue depth can never
  // exceed producers * window.
  const EngineResult r = run_scenario("closed-loop-incast", Backend::kBlfq, 3);
  const auto* spec = find_scenario("closed-loop-incast");
  const double bound =
      static_cast<double>(spec->producers) * spec->window;
  ASSERT_FALSE(r.metrics.depths.empty());
  EXPECT_LE(r.metrics.depths[0].depth.max(), bound);
  EXPECT_EQ(r.metrics.tenants[0].delivered,
            r.metrics.tenants[0].generated);
}

TEST(TrafficEngine, ScaleMultipliesTraffic) {
  const EngineResult r1 = run_scenario("steady-pipeline", Backend::kBlfq, 5, 1);
  const EngineResult r2 = run_scenario("steady-pipeline", Backend::kBlfq, 5, 2);
  EXPECT_EQ(r2.metrics.total_generated(), 2 * r1.metrics.total_generated());
}

TEST(TrafficEngine, RejectsUnknownAndInvalidScenarios) {
  EXPECT_THROW(run_scenario("nope", Backend::kBlfq, 1), std::invalid_argument);

  runtime::Machine m;
  squeue::ChannelFactory f(m, Backend::kBlfq);
  Engine eng(m, f);
  ScenarioSpec bad;  // no name, no tenants
  EXPECT_THROW(eng.run(bad, 1), std::invalid_argument);
}

TEST(TrafficEngine, CsvHasPrefixColumnsAndStableShape) {
  const EngineResult r = run_scenario("multitenant-mesh", Backend::kZmq, 9);
  const std::string csv = r.csv();
  EXPECT_EQ(csv.find("scenario,backend,seed,scale,tenant"), 0u);
  // 1 header + 3 tenants + 1 aggregate.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 5);
  EXPECT_NE(csv.find("multitenant-mesh,ZMQ,9,1,gold"), std::string::npos);
}

}  // namespace
}  // namespace vl::traffic
