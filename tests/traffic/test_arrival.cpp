// Arrival-process properties: determinism under a fixed seed, mean-rate
// sanity for the stochastic processes, and the qualitative shape of the
// bursty / diurnal envelopes.

#include "traffic/arrival.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vl::traffic {
namespace {

std::vector<Tick> draw(ArrivalProcess& p, int n) {
  std::vector<Tick> gaps;
  Tick now = 0;
  for (int i = 0; i < n; ++i) {
    const Tick g = p.next_gap(now);
    gaps.push_back(g);
    now += g;
  }
  return gaps;
}

double mean_of(const std::vector<Tick>& xs) {
  double s = 0;
  for (Tick x : xs) s += static_cast<double>(x);
  return s / static_cast<double>(xs.size());
}

TEST(Arrival, DeterministicIsExact) {
  DeterministicArrival a(120);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_gap(Tick(i) * 120), 120u);
}

TEST(Arrival, SubTickGapsFloorToOne) {
  DeterministicArrival a(0.25);
  EXPECT_EQ(a.next_gap(0), 1u);
}

TEST(Arrival, SameSeedSameSequence) {
  for (auto kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty,
                    ArrivalKind::kDiurnal}) {
    ArrivalSpec s;
    s.kind = kind;
    s.mean_gap = 50;
    auto a = make_arrival(s, 1234);
    auto b = make_arrival(s, 1234);
    const auto ga = draw(*a, 500);
    const auto gb = draw(*b, 500);
    EXPECT_EQ(ga, gb) << "kind " << to_string(kind);
  }
}

TEST(Arrival, DifferentSeedsDiverge) {
  auto a = make_arrival(ArrivalSpec::poisson(100), 1);
  auto b = make_arrival(ArrivalSpec::poisson(100), 2);
  EXPECT_NE(draw(*a, 100), draw(*b, 100));
}

TEST(Arrival, PoissonMeanRateMatches) {
  auto p = make_arrival(ArrivalSpec::poisson(200), 77);
  const auto gaps = draw(*p, 20000);
  // Flooring to integer ticks shaves < 1 tick off the mean.
  EXPECT_NEAR(mean_of(gaps), 200.0, 10.0);
}

TEST(Arrival, PoissonGapsAlwaysPositive) {
  auto p = make_arrival(ArrivalSpec::poisson(2), 5);
  for (Tick g : draw(*p, 5000)) EXPECT_GE(g, 1u);
}

TEST(Arrival, BurstyMeanSitsBetweenRegimes) {
  const auto spec = ArrivalSpec::bursty(/*burst_gap=*/10, /*idle_gap=*/2000,
                                        /*burst_dwell=*/5000,
                                        /*idle_dwell=*/5000);
  auto p = make_arrival(spec, 99);
  const double m = mean_of(draw(*p, 20000));
  // Far more arrivals land in bursts, so the mean gap hugs the burst rate
  // but the idle stretches must pull it visibly above it.
  EXPECT_GT(m, 11.0);
  EXPECT_LT(m, 1000.0);
}

TEST(Arrival, DiurnalRateOscillates) {
  const auto spec = ArrivalSpec::diurnal(100, 0.9, 40000);
  DiurnalArrival d(spec, 3);
  const double peak = d.rate_at(10000);    // sin = +1
  const double trough = d.rate_at(30000);  // sin = -1
  EXPECT_NEAR(peak, 0.019, 0.0005);
  EXPECT_NEAR(trough, 0.001, 0.0005);
  EXPECT_GT(peak, 10 * trough);
}

TEST(Arrival, DiurnalDrawsFasterAtPeak) {
  const auto spec = ArrivalSpec::diurnal(100, 0.9, 1 << 20);
  auto p1 = make_arrival(spec, 11);
  auto p2 = make_arrival(spec, 11);
  // Sample many gaps pinned near the peak and the trough respectively.
  double peak_sum = 0, trough_sum = 0;
  for (int i = 0; i < 4000; ++i) {
    peak_sum += static_cast<double>(p1->next_gap((1 << 20) / 4));
    trough_sum += static_cast<double>(p2->next_gap(3 * (1 << 20) / 4));
  }
  EXPECT_LT(peak_sum * 3, trough_sum);
}

}  // namespace
}  // namespace vl::traffic
