// Tenant QoS classes end-to-end: class-weighted hardware enforcement (CAF
// per-class credit caps, VLRD per-SQI class quotas), per-class aggregation
// and SLO attainment in the metrics, and byte-determinism of class-weighted
// scheduling. The load-bearing claims:
//
//   * with QoS enforced, a latency-class tenant's p99 stays under its SLO
//     while the bulk class absorbs the back-pressure (blocked_ticks);
//   * the latency class's p99 is strictly below the mixed-class p99 of the
//     same scenario with QoS disabled (the ablation baseline).

#include <gtest/gtest.h>

#include <string>

#include "squeue/factory.hpp"
#include "traffic/engine.hpp"

namespace vl::traffic {
namespace {

using squeue::Backend;

ScenarioSpec without_qos(const ScenarioSpec& s) {
  ScenarioSpec off = s;
  off.qos = false;
  return off;
}

const TenantMetrics& tenant(const EngineResult& r, const std::string& name) {
  for (const auto& t : r.metrics.tenants)
    if (t.tenant == name) return t;
  ADD_FAILURE() << "no tenant " << name;
  static TenantMetrics none;
  return none;
}

class QosOverHardwareBackend : public ::testing::TestWithParam<Backend> {};

TEST_P(QosOverHardwareBackend, LatencyClassMeetsSloWhileBulkAbsorbsBackpressure) {
  for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{42}}) {
    const EngineResult r = run_scenario("qos-incast", GetParam(), seed);
    const TenantMetrics& rt = tenant(r, "rt");
    const TenantMetrics& bulk = tenant(r, "bulk");
    ASSERT_GT(rt.delivered, 0u);
    ASSERT_GT(rt.slo_p99, 0u);
    EXPECT_LE(rt.latency.percentile(99), rt.slo_p99)
        << "seed " << seed << " on " << r.backend;
    EXPECT_GE(rt.slo_attained_pct(), 95.0) << "seed " << seed;
    // Back-pressure lands on the bulk flood: its producers spend far more
    // time blocked inside send() than the latency tenant's.
    EXPECT_GT(bulk.blocked_ticks, rt.blocked_ticks)
        << "seed " << seed << " on " << r.backend;
  }
}

TEST_P(QosOverHardwareBackend, LatencyP99BeatsMixedP99WithoutQos) {
  const ScenarioSpec* spec = find_scenario("qos-incast");
  ASSERT_NE(spec, nullptr);
  for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{42}}) {
    const EngineResult on = run_spec(*spec, GetParam(), seed);
    const EngineResult off = run_spec(without_qos(*spec), GetParam(), seed);

    LogHistogram latency_on, mixed_off;
    for (const auto& c : on.metrics.by_class())
      if (c.cls == QosClass::kLatency) latency_on.merge(c.agg.latency);
    for (const auto& t : off.metrics.tenants) mixed_off.merge(t.latency);
    ASSERT_GT(latency_on.count(), 0u);
    ASSERT_GT(mixed_off.count(), 0u);
    EXPECT_LT(latency_on.percentile(99), mixed_off.percentile(99))
        << "seed " << seed << " on " << on.backend;
  }
}

TEST_P(QosOverHardwareBackend, ClassWeightedSchedulingIsByteDeterministic) {
  const Backend b = GetParam();
  const std::string a = run_scenario("qos-incast", b, 42).csv();
  const std::string c = run_scenario("qos-incast", b, 42).csv();
  EXPECT_EQ(a, c);
  // And the knob does something: the ablated run produces different bytes.
  const ScenarioSpec* spec = find_scenario("qos-incast");
  EXPECT_NE(a, run_spec(without_qos(*spec), b, 42).csv());
}

INSTANTIATE_TEST_SUITE_P(HardwareBackends, QosOverHardwareBackend,
                         ::testing::Values(Backend::kCaf, Backend::kVl),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kCaf ? "CAF" : "VL";
                         });

TEST(Qos, PresetsAreRegisteredWithMixedClassesAndSlos) {
  for (const char* name : {"qos-incast", "qos-diurnal-mix"}) {
    const ScenarioSpec* s = find_scenario(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_TRUE(s->qos) << name;
    EXPECT_TRUE(validate(*s).empty()) << name << ": " << validate(*s);
    bool has_latency = false, has_bulk = false, has_slo = false;
    for (const auto& t : s->tenants) {
      has_latency |= t.qos == QosClass::kLatency;
      has_bulk |= t.qos == QosClass::kBulk;
      has_slo |= t.slo_p99 > 0;
    }
    EXPECT_TRUE(has_latency && has_bulk && has_slo) << name;
  }
}

TEST(Qos, MachineConfigPartitionsBudgetsByWeight) {
  const ScenarioSpec* spec = find_scenario("qos-incast");
  ASSERT_NE(spec, nullptr);

  // All three classes present, weights 4:2:1 over a 63-entry prodBuf share
  // and a 64-credit CAF budget.
  const sim::SystemConfig vl = machine_config_for(*spec, Backend::kVl);
  EXPECT_EQ(vl.vlrd.class_quota[static_cast<std::size_t>(QosClass::kLatency)],
            36u);
  EXPECT_EQ(vl.vlrd.class_quota[static_cast<std::size_t>(QosClass::kStandard)],
            18u);
  EXPECT_EQ(vl.vlrd.class_quota[static_cast<std::size_t>(QosClass::kBulk)], 9u);

  const sim::SystemConfig caf = machine_config_for(*spec, Backend::kCaf);
  EXPECT_EQ(
      caf.caf.class_credits[static_cast<std::size_t>(QosClass::kLatency)], 36u);
  EXPECT_EQ(
      caf.caf.class_credits[static_cast<std::size_t>(QosClass::kStandard)],
      18u);
  EXPECT_EQ(caf.caf.class_credits[static_cast<std::size_t>(QosClass::kBulk)],
            9u);

  // Ablated: every knob stays at its "unenforced" zero.
  const sim::SystemConfig off = machine_config_for(without_qos(*spec),
                                                   Backend::kVl);
  for (std::size_t c = 0; c < kQosClasses; ++c)
    EXPECT_EQ(off.vlrd.class_quota[c], 0u);

  // A class no tenant uses keeps a token quota of 1 (pills still flow).
  const ScenarioSpec* mix = find_scenario("qos-diurnal-mix");
  ASSERT_NE(mix, nullptr);
  const sim::SystemConfig two = machine_config_for(*mix, Backend::kVl);
  EXPECT_EQ(two.vlrd.class_quota[static_cast<std::size_t>(QosClass::kStandard)],
            1u);
  EXPECT_GT(two.vlrd.class_quota[static_cast<std::size_t>(QosClass::kLatency)],
            two.vlrd.class_quota[static_cast<std::size_t>(QosClass::kBulk)]);

  // Software backends get no quotas either way.
  const sim::SystemConfig blfq = machine_config_for(*spec, Backend::kBlfq);
  for (std::size_t c = 0; c < kQosClasses; ++c)
    EXPECT_EQ(blfq.vlrd.class_quota[c], 0u);
}

TEST(Qos, CountLeAndSloAttainmentMath) {
  LogHistogram h;
  for (std::uint64_t v : {10, 20, 30, 40, 1000}) h.record(v);
  EXPECT_EQ(h.count_le(9), 0u);
  EXPECT_EQ(h.count_le(10), 1u);
  EXPECT_EQ(h.count_le(40), 4u);
  EXPECT_EQ(h.count_le(900), 4u);   // bucket granularity, below 1000's bucket
  EXPECT_EQ(h.count_le(1000), 5u);
  EXPECT_EQ(h.count_le(~std::uint64_t{0}), 5u);

  TenantMetrics t;
  t.slo_p99 = 40;
  t.delivered = 5;
  t.latency = h;
  EXPECT_EQ(t.slo_within(), 4u);
  EXPECT_DOUBLE_EQ(t.slo_attained_pct(), 80.0);

  TenantMetrics no_slo;
  no_slo.delivered = 3;
  EXPECT_DOUBLE_EQ(no_slo.slo_attained_pct(), 100.0);  // vacuously met
}

TEST(Qos, ByClassAggregatesTenantsAndTheirOwnBudgets) {
  ScenarioMetrics m;
  TenantMetrics a;  // latency, tight budget: 1 of 2 within
  a.tenant = "a";
  a.qos = QosClass::kLatency;
  a.slo_p99 = 10;
  a.delivered = 2;
  a.latency.record(5);
  a.latency.record(50);
  TenantMetrics b;  // latency, loose budget: 2 of 2 within
  b.tenant = "b";
  b.qos = QosClass::kLatency;
  b.slo_p99 = 100;
  b.delivered = 2;
  b.latency.record(60);
  b.latency.record(70);
  TenantMetrics c;  // bulk, no SLO
  c.tenant = "c";
  c.qos = QosClass::kBulk;
  c.delivered = 4;
  c.latency.record(500, 4);
  m.tenants = {a, b, c};

  EXPECT_EQ(m.distinct_classes(), 2u);
  const auto classes = m.by_class();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].cls, QosClass::kLatency);
  EXPECT_EQ(classes[0].agg.delivered, 4u);
  EXPECT_EQ(classes[0].slo_delivered, 4u);
  EXPECT_EQ(classes[0].slo_within, 3u);  // 1 (tight) + 2 (loose)
  EXPECT_DOUBLE_EQ(classes[0].slo_attained_pct(), 75.0);
  EXPECT_EQ(classes[1].cls, QosClass::kBulk);
  EXPECT_EQ(classes[1].slo_delivered, 0u);
  EXPECT_DOUBLE_EQ(classes[1].slo_attained_pct(), 100.0);

  // Mixed classes surface per-class CSV rows: 3 tenants + 2 classes + "*".
  EXPECT_EQ(m.csv_rows().size(), 6u);
}

TEST(Qos, QosScenariosStayGreenOnSoftwareBackends) {
  // BLFQ/ZMQ have no enforcement knob; the classes are recorded, the spec
  // still runs green with conservation intact (covered for all presets by
  // test_engine, asserted here for the QoS pair explicitly).
  for (Backend b : {Backend::kBlfq, Backend::kZmq}) {
    const EngineResult r = run_scenario("qos-incast", b, 7);
    for (const auto& t : r.metrics.tenants) {
      EXPECT_EQ(t.generated, t.sent + t.dropped);
      EXPECT_EQ(t.delivered, t.sent);
    }
    EXPECT_GT(r.metrics.total_delivered(), 0u);
  }
}

}  // namespace
}  // namespace vl::traffic
