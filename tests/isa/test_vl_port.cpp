// ISA-contract tests for vl_select / vl_push / vl_fetch (§ III-B).

#include "isa/vl_port.hpp"

#include <gtest/gtest.h>

#include "runtime/machine.hpp"
#include "vlrd/addressing.hpp"

namespace vl::isa {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

struct VlPortFixture : ::testing::Test {
  Machine m;
  Addr dev_sqi1 = vlrd::encode({0, 1, 0, 0});
  Addr dev_sqi2 = vlrd::encode({0, 2, 0, 0});
};

TEST_F(VlPortFixture, PushWithoutSelectFails) {
  SimThread t = m.thread_on(0);
  int rc = -1;
  spawn([](Machine& m, SimThread t, Addr dev, int* rc) -> Co<void> {
    *rc = co_await m.vl_port(0).vl_push(t.tid, dev);
  }(m, t, dev_sqi1, &rc));
  m.run();
  EXPECT_EQ(rc, kVlNoSelection);
}

TEST_F(VlPortFixture, FetchWithoutSelectFails) {
  SimThread t = m.thread_on(0);
  int rc = -1;
  spawn([](Machine& m, SimThread t, Addr dev, int* rc) -> Co<void> {
    *rc = co_await m.vl_port(0).vl_fetch(t.tid, dev);
  }(m, t, dev_sqi1, &rc));
  m.run();
  EXPECT_EQ(rc, kVlNoSelection);
}

TEST_F(VlPortFixture, SelectLatchesAndPushConsumes) {
  SimThread t = m.thread_on(0);
  const Addr line = m.alloc(kLineSize);
  int rc1 = -1, rc2 = -1;
  spawn([](Machine& m, SimThread t, Addr line, Addr dev, int* a,
           int* b) -> Co<void> {
    co_await t.store(line, 0x1234, 8);
    co_await m.vl_port(0).vl_select(t.tid, line);
    EXPECT_TRUE(m.vl_port(0).has_selection(t.tid));
    *a = co_await m.vl_port(0).vl_push(t.tid, dev);
    // Selection ends on completion: a second push must fail.
    *b = co_await m.vl_port(0).vl_push(t.tid, dev);
  }(m, t, line, dev_sqi1, &rc1, &rc2));
  m.run();
  EXPECT_EQ(rc1, kVlOk);
  EXPECT_EQ(rc2, kVlNoSelection);
  EXPECT_EQ(m.vlrd().queued_data(1), 1u);
}

TEST_F(VlPortFixture, SuccessfulPushZeroesLineExclusive) {
  SimThread t = m.thread_on(0);
  const Addr line = m.alloc(kLineSize);
  spawn([](Machine& m, SimThread t, Addr line, Addr dev) -> Co<void> {
    co_await t.store(line, 0xffff, 8);
    co_await m.vl_port(0).vl_select(t.tid, line);
    co_await m.vl_port(0).vl_push(t.tid, dev);
  }(m, t, line, dev_sqi1));
  m.run();
  EXPECT_EQ(m.mem().backing().read(line, 8), 0u);
  EXPECT_EQ(m.mem().l1_state(0, line), mem::Mesi::kExclusive);
}

TEST_F(VlPortFixture, EndToEndPushFetchInjects) {
  SimThread prod = m.thread_on(0);
  SimThread cons = m.thread_on(1);
  const Addr pline = m.alloc(kLineSize);
  const Addr cline = m.alloc(kLineSize);

  spawn([](Machine& m, SimThread t, Addr line, Addr dev) -> Co<void> {
    co_await t.store(line, 0xabcdef, 8);
    co_await m.vl_port(0).vl_select(t.tid, line);
    const int rc = co_await m.vl_port(0).vl_push(t.tid, dev);
    EXPECT_EQ(rc, kVlOk);
  }(m, prod, pline, dev_sqi1));

  spawn([](Machine& m, SimThread t, Addr line, Addr dev) -> Co<void> {
    co_await m.vl_port(1).vl_select(t.tid, line);
    const int rc = co_await m.vl_port(1).vl_fetch(t.tid, dev);
    EXPECT_EQ(rc, kVlOk);
  }(m, cons, cline, dev_sqi1));

  m.run();
  EXPECT_EQ(m.mem().backing().read(cline, 8), 0xabcdefu);
  EXPECT_EQ(m.mem().stats().injections, 1u);
}

TEST_F(VlPortFixture, PushNackOnFullBufferReportsBackPressure) {
  sim::SystemConfig cfg;
  cfg.vlrd.prod_entries = 2;
  Machine small(cfg);
  SimThread t = small.thread_on(0);
  const Addr dev = vlrd::encode({0, 1, 0, 0});
  std::vector<int> rcs;
  spawn([](Machine& m, SimThread t, Addr dev, std::vector<int>* rcs) -> Co<void> {
    for (int i = 0; i < 3; ++i) {
      const Addr line = m.alloc(kLineSize);
      co_await t.store(line, i + 1, 8);
      co_await m.vl_port(0).vl_select(t.tid, line);
      rcs->push_back(co_await m.vl_port(0).vl_push(t.tid, dev));
    }
  }(small, t, dev, &rcs));
  small.run();
  ASSERT_EQ(rcs.size(), 3u);
  EXPECT_EQ(rcs[0], kVlOk);
  EXPECT_EQ(rcs[1], kVlOk);
  EXPECT_EQ(rcs[2], kVlNack);  // prodBuf full -> back-pressure to software
}

TEST_F(VlPortFixture, ContextSwitchClearsSelection) {
  // Two threads on one core: t0 selects, t1 runs (forcing a context
  // switch), then t0's push must fail with "no selection". A short
  // scheduling quantum lets the sibling preempt within the test's window.
  sim::SystemConfig cfg;
  cfg.core.sched_quantum = 100;
  Machine mm(cfg);
  SimThread t0 = mm.thread_on(0);
  SimThread t1 = mm.thread_on(0);
  const Addr line = mm.alloc(kLineSize);
  int rc = -1;
  bool t0_selected = false;

  spawn([](Machine& m, SimThread t, Addr line, bool* sel, int* rc) -> Co<void> {
    co_await m.vl_port(0).vl_select(t.tid, line);
    *sel = true;
    co_await t.compute(50);  // yield window for t1
    *rc = co_await m.vl_port(0).vl_push(t.tid, vlrd::encode({0, 1, 0, 0}));
  }(mm, t0, line, &t0_selected, &rc));

  spawn([](SimThread t) -> Co<void> {
    co_await t.compute(10);  // forces residency change on core 0
  }(t1));

  mm.run();
  EXPECT_TRUE(t0_selected);
  EXPECT_EQ(rc, kVlNoSelection);
  EXPECT_GE(mm.core(0).ctx_switches(), 1u);
}

TEST_F(VlPortFixture, ContextSwitchRejectsInjection) {
  // Consumer registers demand, then a sibling thread context-switches the
  // core (clearing pushable); the arriving data must be rejected and
  // retained by the VLRD. A short quantum lets the sibling preempt.
  sim::SystemConfig cfg;
  cfg.core.sched_quantum = 500;
  Machine mm(cfg);
  SimThread cons = mm.thread_on(1);
  SimThread sibling = mm.thread_on(1);
  SimThread prod = mm.thread_on(0);
  const Addr cline = mm.alloc(kLineSize);
  const Addr pline = mm.alloc(kLineSize);

  spawn([](Machine& m, SimThread t, Addr line) -> Co<void> {
    co_await m.vl_port(1).vl_select(t.tid, line);
    co_await m.vl_port(1).vl_fetch(t.tid, vlrd::encode({0, 3, 0, 0}));
  }(mm, cons, cline));

  spawn([](Machine& m, SimThread t) -> Co<void> {
    // Let the consumer finish select+fetch first, then run on its core:
    // the residency change clears the pushable bits.
    co_await sim::Delay(m.eq(), 1500);
    co_await t.compute(5);
  }(mm, sibling));

  spawn([](Machine& m, SimThread t, Addr line) -> Co<void> {
    co_await t.compute(4000);  // arrive well after the context switch
    co_await t.store(line, 0x55, 8);
    co_await m.vl_port(0).vl_select(t.tid, line);
    co_await m.vl_port(0).vl_push(t.tid, vlrd::encode({0, 3, 0, 0}));
  }(mm, prod, pline));

  mm.run();
  EXPECT_EQ(mm.mem().stats().inject_rejects, 1u);
  EXPECT_EQ(mm.vlrd().queued_data(3), 1u);   // data stayed with the VLRD
  EXPECT_EQ(mm.mem().backing().read(cline, 8), 0u);
}

TEST_F(VlPortFixture, SqiRoutingFromDeviceAddress) {
  SimThread t = m.thread_on(0);
  spawn([](Machine& m, SimThread t, Addr d1, Addr d2) -> Co<void> {
    const Addr l1 = m.alloc(kLineSize), l2 = m.alloc(kLineSize);
    co_await t.store(l1, 1, 8);
    co_await m.vl_port(0).vl_select(t.tid, l1);
    co_await m.vl_port(0).vl_push(t.tid, d1);
    co_await t.store(l2, 2, 8);
    co_await m.vl_port(0).vl_select(t.tid, l2);
    co_await m.vl_port(0).vl_push(t.tid, d2);
  }(m, t, dev_sqi1, dev_sqi2));
  m.run();
  EXPECT_EQ(m.vlrd().queued_data(1), 1u);
  EXPECT_EQ(m.vlrd().queued_data(2), 1u);
}

}  // namespace
}  // namespace vl::isa
