// Ablation sweeps for the paper's optional/extension design points built in
// this repo (DESIGN.md "extensions"):
//   1. multi-VLRD scaling (§ III-C2, Fig. 9 bits J:N+1): many-channel
//      workloads across 1/2/4 routing devices;
//   2. addressing scheme (§ III-C2): Fig. 9 bit-field vs CAM address table —
//      per-op latency against PA-window consumption;
//   3. buffer management (§ III-A trade-off 2): linked lists vs bitvector
//      scan as the VLRD buffers grow.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "runtime/supervisor.hpp"
#include "vlrd/addr_table.hpp"
#include "workloads/runner.hpp"

namespace {

using namespace vl;

double halo_ns_devices(std::uint32_t devices, int scale) {
  sim::SystemConfig cfg = sim::SystemConfig::table3_multi(devices);
  runtime::Machine m(cfg);
  squeue::ChannelFactory f(m, squeue::Backend::kVl);
  return workloads::run_halo(m, f, scale).ns;
}

double sweep_ns_devices(std::uint32_t devices, int scale) {
  sim::SystemConfig cfg = sim::SystemConfig::table3_multi(devices);
  runtime::Machine m(cfg);
  squeue::ChannelFactory f(m, squeue::Backend::kVl);
  return workloads::run_sweep(m, f, scale).ns;
}

double pingpong_ns_addressing(sim::Addressing mode, int scale) {
  sim::SystemConfig cfg;
  cfg.vlrd.addressing = mode;
  runtime::Machine m(cfg);
  squeue::ChannelFactory f(m, squeue::Backend::kVl);
  return workloads::run_pingpong(m, f, scale).ns;
}

double incast_ns_mgmt(sim::BufferMgmt mgmt, std::uint32_t entries, int scale) {
  sim::SystemConfig cfg;
  cfg.vlrd.buffer_mgmt = mgmt;
  cfg.vlrd.prod_entries = entries;
  cfg.vlrd.cons_entries = entries;
  runtime::Machine m(cfg);
  squeue::ChannelFactory f(m, squeue::Backend::kVl);
  return workloads::run_incast(m, f, scale).ns;
}

struct CoupledResult {
  double ns;
  std::uint64_t nacks;
};

CoupledResult incast_coupled(bool coupled, int scale) {
  sim::SystemConfig cfg;
  cfg.vlrd.coupled_io = coupled;
  runtime::Machine m(cfg);
  squeue::ChannelFactory f(m, squeue::Backend::kVl);
  const double ns = workloads::run_incast(m, f, scale).ns;
  const auto vs = m.vlrd_stats();
  return {ns, vs.push_nacks + vs.fetch_nacks};
}

// QoS isolation: a hog pair floods SQI "hog" while a light pair trickles
// on SQI "victim"; report the victim's completion time with the paper's
// shared buffer vs a CAF-style per-SQI quota.
double victim_ns(std::uint32_t quota, int scale) {
  sim::SystemConfig cfg;
  cfg.vlrd.prod_entries = 16;  // small shared buffer: contention matters
  cfg.vlrd.per_sqi_quota = quota;
  runtime::Machine m(cfg);
  squeue::ChannelFactory f(m, squeue::Backend::kVl);
  auto hog = f.make("hog", 0, 1);
  auto victim = f.make("victim", 0, 1);
  using sim::Co;
  using sim::SimThread;
  // Hog: 2 fast producers, 1 slow consumer -> occupancy pressure.
  for (int p = 0; p < 2; ++p) {
    sim::spawn([](squeue::Channel& ch, SimThread t, int n) -> Co<void> {
      for (int i = 0; i < n; ++i) co_await ch.send1(t, i);
    }(*hog, m.thread_on(static_cast<CoreId>(p)), 300 * scale));
  }
  sim::spawn([](squeue::Channel& ch, SimThread t, int n) -> Co<void> {
    for (int i = 0; i < n; ++i) {
      (void)co_await ch.recv1(t);
      co_await t.compute(500);  // slow drain keeps the buffer full
    }
  }(*hog, m.thread_on(8), 600 * scale));
  // Victim: light 1:1 traffic; measure when it finishes.
  Tick victim_done = 0;
  sim::spawn([](squeue::Channel& ch, SimThread t, int n) -> Co<void> {
    for (int i = 0; i < n; ++i) {
      co_await ch.send1(t, i);
      co_await t.compute(200);
    }
  }(*victim, m.thread_on(4), 50 * scale));
  sim::spawn([](squeue::Channel& ch, SimThread t, int n,
                Tick* done) -> Co<void> {
    for (int i = 0; i < n; ++i) (void)co_await ch.recv1(t);
    *done = t.core->eq().now();
  }(*victim, m.thread_on(12), 50 * scale, &victim_done));
  m.run();
  return m.ns(victim_done);
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = vl::bench::arg_scale(argc, argv);
  vl::bench::print_header("Ablation (extensions)",
                          "multi-VLRD / addressing / buffer management");

  std::printf("\n-- 1. routing devices vs many-channel workloads (VL) --\n");
  TextTable t1({"devices", "halo ns", "vs 1 dev", "sweep ns", "vs 1 dev"});
  const double halo1 = halo_ns_devices(1, scale);
  const double sweep1 = sweep_ns_devices(1, scale);
  for (std::uint32_t d : {1u, 2u, 4u}) {
    const double h = halo_ns_devices(d, scale);
    const double s = sweep_ns_devices(d, scale);
    t1.add_row({std::to_string(d), TextTable::num(h, 0),
                TextTable::num(h / halo1, 3), TextTable::num(s, 0),
                TextTable::num(s / sweep1, 3)});
  }
  std::printf("%s", t1.render().c_str());

  std::printf("\n-- 2. addressing scheme: latency vs PA window --\n");
  TextTable t2({"scheme", "pingpong ns", "PA window (per dev)"});
  const double bf = pingpong_ns_addressing(sim::Addressing::kBitField, scale);
  const double at = pingpong_ns_addressing(sim::Addressing::kAddrTable, scale);
  t2.add_row({"bit-field (Fig. 9)", TextTable::num(bf, 0),
              TextTable::num(static_cast<double>(
                                 vlrd::AddrTable::bitfield_window_bytes()) /
                                 (1024.0 * 1024.0),
                             1) +
                  " MiB reserved"});
  t2.add_row({"addr table (CAM)", TextTable::num(at, 0),
              "4 KiB per mapped page"});
  std::printf("%s", t2.render().c_str());

  std::printf("\n-- 3. buffer management vs VLRD size (incast, VL) --\n");
  TextTable t3({"entries", "linked-list ns", "bitvector ns", "bv/ll"});
  for (std::uint32_t n : {64u, 128u, 256u, 512u, 1024u}) {
    const double ll = incast_ns_mgmt(sim::BufferMgmt::kLinkedList, n, scale);
    const double bv = incast_ns_mgmt(sim::BufferMgmt::kBitvector, n, scale);
    t3.add_row({std::to_string(n), TextTable::num(ll, 0),
                TextTable::num(bv, 0), TextTable::num(bv / ll, 3)});
  }
  std::printf("%s", t3.render().c_str());

  std::printf("\n-- 4. bus/pipeline decoupling under incast bursts (VL) --\n");
  TextTable t4({"IN buffering", "incast ns", "device NACKs"});
  const CoupledResult dec = incast_coupled(false, scale);
  const CoupledResult cpl = incast_coupled(true, scale);
  t4.add_row({"decoupled (paper)", TextTable::num(dec.ns, 0),
              std::to_string(dec.nacks)});
  t4.add_row({"1 pkt/cycle (coupled)", TextTable::num(cpl.ns, 0),
              std::to_string(cpl.nacks)});
  std::printf("%s", t4.render().c_str());

  std::printf("\n-- 5. QoS: victim completion beside a hog queue (VL) --\n");
  TextTable t5({"per-SQI quota", "victim ns", "vs shared"});
  const double shared = victim_ns(0, scale);
  t5.add_row({"0 (shared, paper)", TextTable::num(shared, 0), "1.000"});
  for (std::uint32_t q : {4u, 8u}) {
    const double v = victim_ns(q, scale);
    t5.add_row({std::to_string(q), TextTable::num(v, 0),
                TextTable::num(v / shared, 3)});
  }
  std::printf("%s\n", t5.render().c_str());

  std::printf(
      "Expected shapes: extra devices help once one device's mapping\n"
      "pipeline saturates (many live channels); the CAM scheme costs a\n"
      "roughly constant extra latency per op but trades a fixed multi-MiB\n"
      "PA window for 4 KiB per page; the bitvector scan's penalty grows\n"
      "with buffer size — the paper's reason for choosing linked lists;\n"
      "coupling bus I/O to the pipeline floods incast with NACK/retry\n"
      "traffic — the paper's reason for the partitioned input buffers;\n"
      "a CAF-style per-SQI quota shields the victim queue from the hog\n"
      "at the cost of extra hog NACKs (the \u00a7 V QoS trade).\n");
  return 0;
}
