// Fig. 1 — Scaling of a Boost-lock-free-style queue: time per push as the
// number of producers feeding one consumer grows, against the latency floor
// of an unsynchronized cache-line transfer (dashed line in the paper).
//
// Two reproductions:
//  (a) native host threads: real MpmcQueue + real line-handoff floor
//      (Platform-IV-style measurement; absolute values depend on the host);
//  (b) the simulator: SimBlfq M:1 on the Table III machine, where the
//      cost growth comes from modelled invalidations/upgrades.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "native/harness.hpp"
#include "runtime/machine.hpp"
#include "squeue/blfq.hpp"

namespace {

using namespace vl;

double sim_ns_per_push(int producers, int per_producer) {
  runtime::Machine m;
  squeue::SimBlfq q(m, 4096);
  for (int p = 0; p < producers; ++p) {
    sim::spawn([](squeue::Channel& q, sim::SimThread t, int n) -> sim::Co<void> {
      for (int i = 0; i < n; ++i) co_await q.send1(t, i);
    }(q, m.thread_on(static_cast<CoreId>(p)), per_producer));
  }
  sim::spawn([](squeue::Channel& q, sim::SimThread t, int n) -> sim::Co<void> {
    for (int i = 0; i < n; ++i) (void)co_await q.recv1(t);
  }(q, m.thread_on(15), producers * per_producer));
  m.run();
  return m.ns(m.now()) / static_cast<double>(producers * per_producer);
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = vl::bench::arg_scale(argc, argv);
  vl::bench::print_header("Figure 1",
                          "BLFQ time-per-push vs producer count, and the "
                          "unsynchronized line-transfer floor");

  const double floor_ns = native::line_transfer_floor_ns(50000u * scale);
  std::printf("\nUnsynchronized line transfer floor (native): %.1f ns "
              "(paper: ~22-34 ns on Platform 1)\n\n",
              floor_ns);

  TextTable t({"producers", "native ns/push", "router ns/push",
               "sim ns/push", "sim/floor ratio"});
  for (int p : {1, 2, 4, 8, 12, 15}) {
    const auto nat = native::mpmc_push_scaling(p, 20000u * scale);
    const auto rtr = native::router_push_scaling(p, 20000u * scale);
    const double sim = sim_ns_per_push(p, 150 * scale);
    t.add_row({std::to_string(p), TextTable::num(nat.ns_per_push, 1),
               TextTable::num(rtr.ns_per_push, 1), TextTable::num(sim, 1),
               TextTable::num(sim / floor_ns, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected shape: MPMC ns/push rises with producer count and sits\n"
      "well above the unsynchronized floor; the endpoint-router series\n"
      "(software VL topology: private SPSC rings + router thread) stays\n"
      "flat until the router saturates — the asymptote VL's hardware\n"
      "router removes.\n");
  return 0;
}
