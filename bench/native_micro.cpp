// Native microbenchmarks (google-benchmark) for the host-thread library:
// queue and lock hot-path costs that complement the simulator figures.

#include <benchmark/benchmark.h>

#include <mutex>

#include "native/locks.hpp"
#include "native/mpmc_queue.hpp"
#include "native/spsc_ring.hpp"

namespace {

using namespace vl::native;

void BM_MpmcPushPop(benchmark::State& state) {
  MpmcQueue<std::uint64_t> q(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    q.push(i++);
    benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MpmcPushPop);

void BM_MpmcContended(benchmark::State& state) {
  static MpmcQueue<std::uint64_t>* q = nullptr;
  if (state.thread_index() == 0) q = new MpmcQueue<std::uint64_t>(4096);
  for (auto _ : state) {
    if (state.thread_index() % 2 == 0) {
      q->push(1);
    } else {
      benchmark::DoNotOptimize(q->pop());
    }
  }
  if (state.thread_index() == 0) {
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * state.threads()));
    // Leak q intentionally: other threads may still touch it during teardown.
  }
}
BENCHMARK(BM_MpmcContended)->Threads(2)->Threads(4)->UseRealTime();

void BM_SpscRing(benchmark::State& state) {
  SpscRing<std::uint64_t> r(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    while (!r.try_push(i)) {
    }
    benchmark::DoNotOptimize(r.try_pop());
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscRing);

template <class Lock>
void BM_LockUncontended(benchmark::State& state) {
  Lock l;
  for (auto _ : state) {
    std::lock_guard<Lock> g(l);
    benchmark::DoNotOptimize(&l);
  }
}
BENCHMARK_TEMPLATE(BM_LockUncontended, CasLock);
BENCHMARK_TEMPLATE(BM_LockUncontended, SpinLock);
BENCHMARK_TEMPLATE(BM_LockUncontended, TicketLock);

template <class Lock>
void BM_LockContended(benchmark::State& state) {
  static Lock* l = nullptr;
  static std::uint64_t counter = 0;
  if (state.thread_index() == 0) {
    l = new Lock();
    counter = 0;
  }
  for (auto _ : state) {
    std::lock_guard<Lock> g(*l);
    benchmark::DoNotOptimize(++counter);
  }
}
BENCHMARK_TEMPLATE(BM_LockContended, CasLock)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_LockContended, SpinLock)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(BM_LockContended, TicketLock)->Threads(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
