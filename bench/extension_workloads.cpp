// Extension workloads (allreduce, scatter-gather, stencil, param-server)
// across all queue backends — the Fig. 11 format applied to collective
// patterns the Ember suite motivates but the paper did not evaluate. All
// are latency-bound at fine grain (allreduce's critical path is 2·log2 N
// hops; the others fork/join every superstep), so the expected shape
// matches Fig. 11's halo/bitonic columns: VL ahead, ZMQ trailing BLFQ.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "workloads/runner.hpp"

int main(int argc, char** argv) {
  using namespace vl;
  using squeue::Backend;
  const int scale = vl::bench::arg_scale(argc, argv);
  vl::bench::print_header("Extension workloads",
                          "bsp-native collectives across backends");

  for (const char* name :
       {"allreduce", "scatter-gather", "stencil", "param-server"}) {
    std::printf("\n-- %s --\n", name);
    TextTable t({"backend", "exec ns", "vs BLFQ", "ns/msg", "snoops",
                 "mem txns"});
    double blfq_ns = 0;
    for (Backend b : {Backend::kBlfq, Backend::kZmq, Backend::kVl,
                      Backend::kVlIdeal, Backend::kCaf}) {
      workloads::RunConfig rc = workloads::default_config(name);
      rc.backend = b;
      rc.scale = scale;
      const auto r = workloads::run(name, rc);
      if (b == Backend::kBlfq) blfq_ns = r.ns;
      t.add_row({squeue::to_string(b), TextTable::num(r.ns, 0),
                 TextTable::num(blfq_ns / r.ns, 2) + "x",
                 TextTable::num(r.ns_per_msg(), 1),
                 std::to_string(r.mem.snoops),
                 std::to_string(r.mem.mem_txns())});
    }
    std::printf("%s", t.render().c_str());
  }
  std::printf(
      "\nExpected shapes: both patterns are hop-latency-bound, so the\n"
      "ordering follows Fig. 11's halo/bitonic columns — VL(ideal) >= VL >\n"
      "BLFQ, with ZMQ's per-op software overhead costing it the most.\n");
  return 0;
}
