// Fig. 13 — snoop and upgrade events as bitonic scales: the
// microarchitectural explanation for Fig. 12. Software queues' shared
// state drives rapidly growing snoop/upgrade counts with thread count;
// VL stays near-flat.

#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "workloads/runner.hpp"

int main(int argc, char** argv) {
  using namespace vl;
  using squeue::Backend;
  const int scale = vl::bench::arg_scale(argc, argv, 2);
  vl::bench::print_header(
      "Figure 13", "bitonic snoops and S->E upgrades vs total threads");

  const std::vector<int> workers = {1, 3, 7, 15};
  const std::vector<Backend> backends = {Backend::kBlfq, Backend::kZmq,
                                         Backend::kVl};

  TextTable t({"total threads", "backend", "snoops", "upgrades",
               "snoops/msg"});
  for (Backend b : backends) {
    for (int w : workers) {
      workloads::RunConfig rc = workloads::default_config("bitonic");
      rc.backend = b;
      rc.scale = scale;
      rc.bitonic_workers = w;
      const auto r = run("bitonic", rc);
      t.add_row({std::to_string(w + 1), squeue::to_string(b),
                 std::to_string(r.mem.snoops), std::to_string(r.mem.upgrades),
                 TextTable::num(static_cast<double>(r.mem.snoops) /
                                    static_cast<double>(r.messages),
                                2)});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Expected shape: BLFQ/ZMQ snoops+upgrades grow steeply with "
              "threads; VL's stay comparatively flat (array traffic only).\n");
  return 0;
}
