// § IV-B "Area estimation" — the analytical reproduction of the Synopsys
// DC numbers: VLRD buffers 0.142 mm^2 / 0.155 mm^2 total at 16 nm, 13% of
// one Arm A-72, <1% of a 16-core SoC. Also sweeps buffer depth to show how
// area scales (the § III-A design trade-off).

#include <cstdio>

#include "arch/area_model.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace vl;
  bench::print_header("Area estimation (§ IV-B)",
                      "VLRD storage/area model, calibrated at Table III");

  arch::AreaModel model{sim::VlrdConfig{}};
  const auto b = model.estimate();

  std::printf("\nTable III configuration (64 entries each):\n");
  TextTable t({"structure", "bits", "KiB"});
  t.add_row({"prodBuf", std::to_string(b.prod_buf_bits),
             TextTable::num(b.prod_buf_bits / 8.0 / 1024.0, 2)});
  t.add_row({"consBuf", std::to_string(b.cons_buf_bits),
             TextTable::num(b.cons_buf_bits / 8.0 / 1024.0, 2)});
  t.add_row({"linkTab", std::to_string(b.link_tab_bits),
             TextTable::num(b.link_tab_bits / 8.0 / 1024.0, 2)});
  t.add_row({"total", std::to_string(b.total_bits),
             TextTable::num(b.total_bits / 8.0 / 1024.0, 2)});
  std::printf("%s", t.render().c_str());

  std::printf("\nbuffers: %.3f mm^2 (paper 0.142)\n", b.buffers_mm2);
  std::printf("total:   %.3f mm^2 (paper 0.155)\n", b.total_mm2);
  std::printf("vs A-72 core (1.15 mm^2):   %.1f%% (paper ~13%%)\n",
              b.pct_of_a72);
  std::printf("vs 16-core SoC (18.4 mm^2): %.2f%% (paper <1%%)\n\n",
              b.pct_of_16core);

  std::printf("-- buffer-depth sweep (design trade-off, § III-A) --\n");
  TextTable sweep({"entries", "total KiB", "buffers mm^2", "% of A-72"});
  for (std::uint32_t n : {16u, 32u, 64u, 128u, 256u, 512u}) {
    sim::VlrdConfig cfg;
    cfg.prod_entries = cfg.cons_entries = cfg.link_entries = n;
    const auto e = arch::AreaModel{cfg}.estimate();
    sweep.add_row({std::to_string(n),
                   TextTable::num(e.total_bits / 8.0 / 1024.0, 1),
                   TextTable::num(e.buffers_mm2, 3),
                   TextTable::num(e.pct_of_a72, 1)});
  }
  std::printf("%s\n", sweep.render().c_str());
  return 0;
}
