// Fig. 14 — coherence-traffic interference: STREAM (memory-bound bystander)
// alone vs co-scheduled with a ping-pong pair using BLFQ / ZMQ / VL.
// Paper result: every queue perturbs STREAM's execution time by <= 2%;
// VL's added snoop traffic is comparable to BLFQ and far below ZMQ.

#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "workloads/runner.hpp"

int main(int argc, char** argv) {
  using namespace vl;
  using squeue::Backend;
  const int scale = vl::bench::arg_scale(argc, argv);
  vl::bench::print_header("Figure 14",
                          "STREAM alone vs STREAM + ping-pong per backend");

  const auto alone =
      workloads::run_stream_interference(Backend::kVl, false, scale);

  TextTable t({"configuration", "STREAM time (us)", "vs alone", "snoops",
               "mem txns", "pingpong msgs"});
  t.add_row({"STREAM (alone)", TextTable::num(alone.stream.ns / 1000.0, 1),
             "1.000", std::to_string(alone.stream.mem.snoops),
             std::to_string(alone.stream.mem.mem_txns()), "0"});

  for (Backend b : {Backend::kBlfq, Backend::kZmq, Backend::kVl}) {
    const auto r = workloads::run_stream_interference(b, true, scale);
    t.add_row({std::string("STREAM + pingpong(") + squeue::to_string(b) + ")",
               TextTable::num(r.stream.ns / 1000.0, 1),
               TextTable::num(r.stream.ns / alone.stream.ns, 3),
               std::to_string(r.stream.mem.snoops),
               std::to_string(r.stream.mem.mem_txns()),
               std::to_string(r.pingpong_msgs)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Expected shape: STREAM time varies by only a few percent in "
              "all configurations; ZMQ adds the most snoop traffic, VL's is "
              "comparable to BLFQ's.\n");
  return 0;
}
