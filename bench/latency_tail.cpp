// Per-message latency distributions (extension bench).
//
// The paper reports aggregate runtimes; this bench exposes the underlying
// queueing behaviour § II describes — transient rate mismatch and bursty
// occupancy — as end-to-end message-latency percentiles. Two regimes:
//
//   steady 1:1   — producer and consumer rate-matched (ping-pong-ish);
//   bursty 15:1  — the incast pattern, where arrival bursts make tails.
//
// Shape expectations: VL's P50 sits near the hardware line-transfer floor
// and far below the software queues; under incast the software queues' P99
// explodes with queue depth (Little's law) while VL's back-pressure keeps
// the tail bounded by device NACK/retry pacing.

#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "squeue/factory.hpp"
#include "squeue/latency_channel.hpp"

namespace {

using namespace vl;
using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;
using squeue::Backend;
using squeue::Channel;
using squeue::LatencyChannel;

struct Tail {
  double mean, p50, p99, max;
};

Tail run_steady(Backend b, int msgs) {
  Machine m(squeue::config_for(b));
  squeue::ChannelFactory f(m, b);
  auto inner = f.make("steady", 0, 2);
  LatencyChannel ch(*inner, m.eq(), m.cfg().ns_per_tick);
  spawn([](Channel& q, SimThread t, int n) -> Co<void> {
    for (int i = 0; i < n; ++i) {
      co_await q.send1(t, static_cast<std::uint64_t>(i));
      co_await t.compute(200);  // rate-matched production
    }
  }(ch, m.thread_on(0), msgs));
  spawn([](Channel& q, SimThread t, int n) -> Co<void> {
    for (int i = 0; i < n; ++i) {
      (void)co_await q.recv1(t);
      co_await t.compute(200);
    }
  }(ch, m.thread_on(1), msgs));
  m.run();
  const auto& s = ch.latencies();
  return {s.mean(), s.percentile(50), s.percentile(99), s.percentile(100)};
}

Tail run_incast(Backend b, int per_producer) {
  constexpr int kProducers = 15;
  Machine m(squeue::config_for(b));
  squeue::ChannelFactory f(m, b);
  auto inner = f.make("incast", 0, 2);
  LatencyChannel ch(*inner, m.eq(), m.cfg().ns_per_tick);
  for (int p = 0; p < kProducers; ++p) {
    spawn([](Channel& q, SimThread t, int n, int self) -> Co<void> {
      for (int i = 0; i < n; ++i) {
        co_await q.send1(t, static_cast<std::uint64_t>(self * 1000 + i));
        co_await t.compute(100 + 37 * static_cast<Tick>(self));  // staggered
      }
    }(ch, m.thread_on(static_cast<CoreId>(p)), per_producer, p));
  }
  spawn([](Channel& q, SimThread t, int n) -> Co<void> {
    for (int i = 0; i < n; ++i) {
      (void)co_await q.recv1(t);
      co_await t.compute(150);  // master does some work per item
    }
  }(ch, m.thread_on(15), kProducers * per_producer));
  m.run();
  const auto& s = ch.latencies();
  return {s.mean(), s.percentile(50), s.percentile(99), s.percentile(100)};
}

void print_tails(const char* title, Tail (*fn)(Backend, int), int n) {
  std::printf("\n-- %s --\n", title);
  TextTable t({"backend", "mean ns", "P50 ns", "P99 ns", "max ns"});
  for (Backend b : {Backend::kBlfq, Backend::kZmq, Backend::kVl,
                    Backend::kVlIdeal, Backend::kCaf}) {
    const Tail r = fn(b, n);
    t.add_row({squeue::to_string(b), TextTable::num(r.mean, 0),
               TextTable::num(r.p50, 0), TextTable::num(r.p99, 0),
               TextTable::num(r.max, 0)});
  }
  std::printf("%s", t.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = vl::bench::arg_scale(argc, argv);
  vl::bench::print_header("Latency tails (extension)",
                          "end-to-end message latency percentiles");
  print_tails("steady 1:1, rate-matched", run_steady, 200 * scale);
  print_tails("bursty 15:1 incast", run_incast, 20 * scale);
  std::printf(
      "\nExpected shapes: VL P50 near the line-transfer floor, software\n"
      "queues above it; incast P99 grows with queue depth for the software\n"
      "queues while VL back-pressure bounds the tail.\n");
  return 0;
}
