// Fig. 15 — VL vs CAF (PACT'16 hardware queue) on the two benchmarks from
// the CAF paper: ping-pong (cache-line-sized data through the queue;
// paper: VL 2.40x) and pipeline (queues carry pointers to 2 KiB payloads;
// paper: VL 1.22x). CAF's register-granularity interface pays one device
// round trip per 64-bit word, where VL moves whole lines.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "workloads/runner.hpp"

int main(int argc, char** argv) {
  using namespace vl;
  using squeue::Backend;
  const int scale = vl::bench::arg_scale(argc, argv);
  vl::bench::print_header("Figure 15", "VL speedup over CAF");

  // ping-pong with 7-dword (56 B) messages: the line-sized payload case.
  runtime::Machine mc(squeue::config_for(Backend::kCaf));
  squeue::ChannelFactory fc(mc, Backend::kCaf);
  const auto caf_pp = workloads::run_pingpong(mc, fc, scale, /*msg_words=*/7);

  runtime::Machine mv(squeue::config_for(Backend::kVl));
  squeue::ChannelFactory fv(mv, Backend::kVl);
  const auto vl_pp = workloads::run_pingpong(mv, fv, scale, /*msg_words=*/7);

  // pipeline: pointer messages, 2 KiB payloads through memory.
  runtime::Machine mc2(squeue::config_for(Backend::kCaf));
  squeue::ChannelFactory fc2(mc2, Backend::kCaf);
  const auto caf_pipe = workloads::run_pipeline(mc2, fc2, scale);

  runtime::Machine mv2(squeue::config_for(Backend::kVl));
  squeue::ChannelFactory fv2(mv2, Backend::kVl);
  const auto vl_pipe = workloads::run_pipeline(mv2, fv2, scale);

  TextTable t({"benchmark", "CAF ns", "VL ns", "VL speedup", "paper"});
  t.add_row({"ping-pong", TextTable::num(caf_pp.ns, 0),
             TextTable::num(vl_pp.ns, 0),
             TextTable::num(caf_pp.ns / vl_pp.ns, 2), "2.40x"});
  t.add_row({"pipeline", TextTable::num(caf_pipe.ns, 0),
             TextTable::num(vl_pipe.ns, 0),
             TextTable::num(caf_pipe.ns / vl_pipe.ns, 2), "1.22x"});
  std::printf("%s\n", t.render().c_str());
  std::printf("Expected shape: VL wins big when payloads ride the queue "
              "(ping-pong), modestly when the queue only carries pointers "
              "(pipeline).\n");
  return 0;
}
