// Simulator kernel throughput benchmark: drives traffic-scenario presets
// across queue backends and reports, per run,
//
//   * executed kernel events (EventQueue::executed delta) — the cost the
//     park/wake + run-queue overhaul attacks: blocked threads that poll
//     burn O(pollers) events per tick, parked threads burn zero;
//   * host wall-clock time, and the derived events/sec (host throughput of
//     the event loop) and simulated Mticks/sec (how much simulated time a
//     host second buys);
//   * events per delivered message — the figure of merit for the kernel
//     (lower = less simulation work per unit of useful traffic).
//
// Results are emitted both as an aligned table and as BENCH_sim.json so CI
// can archive the perf trajectory across commits.
//
//   sim_throughput                         # default preset matrix
//   sim_throughput --list                  # presets + registered workloads
//   sim_throughput --scenario replay-qos-incast --backend vl
//   sim_throughput --scenario incast-burst --backend zmq --scale 2
//   sim_throughput --scenario qos-adversarial-bulk --backend vl
//       --faults 'stall@40000+20000:every=1' --no-supervisor
//   sim_throughput --out build/BENCH_sim.json

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "fault/spec.hpp"
#include "obs/hooks.hpp"
#include "obs/timeline.hpp"
#include "replay/trace.hpp"
#include "traffic/engine.hpp"
#include "traffic/metrics.hpp"
#include "traffic/sharded_engine.hpp"
#include "workloads/runner.hpp"

namespace {

using vl::bench::arg_value;
using vl::bench::parse_backend;
using vl::squeue::Backend;

struct RunSpec {
  std::string scenario;
  Backend backend;
  std::uint32_t batch = 0;  ///< 0 keeps the preset's per-tenant batches.
  int shards = 0;           ///< 0 = classic engine; >= 1 = sharded mesh.
  bool timeline = false;    ///< Attach an obs::Timeline (overhead guard).
  bool sup = false;         ///< Run the closed-loop QoS supervisor.
};

// Default matrix: the polling-heavy shapes the kernel overhaul targets
// (fan-in over the lock-based ZMQ model is the worst case: every blocked
// consumer used to poll), plus one representative of each other backend
// family for the cross-backend trajectory.
const RunSpec kDefaultMatrix[] = {
    {"incast-burst", Backend::kBlfq},
    {"incast-burst", Backend::kZmq},
    {"incast-burst", Backend::kVl},
    {"incast-burst", Backend::kVlIdeal},
    {"incast-burst", Backend::kCaf},
    {"steady-pipeline", Backend::kZmq},
    {"steady-pipeline", Backend::kVl},
    {"closed-loop-incast", Backend::kZmq},
    {"closed-loop-incast", Backend::kVl},
    // Class-weighted scheduling (quota NACK + per-SQI wake) on both
    // hardware backends, so QoS enforcement stays on the perf trajectory.
    {"qos-incast", Backend::kVl},
    {"qos-incast", Backend::kCaf},
    // Batched injection (Channel API v2 send_many/recv_many fast paths) on
    // both hardware backends: the VL row must hold a >= 20% ev/msg gain
    // over its single-message sibling (bench_gate --expect-gain in CI).
    {"incast-burst", Backend::kVl, 8},
    {"incast-burst", Backend::kCaf, 8},
    // Sharded mesh scaling (consistent-hash tenant routing, per-shard event
    // loops): the same 100k-tenant diurnal workload on 1, 4, and 8 shards.
    // ev/msg must keep collapsing with S — bench_gate --expect-gain pins
    // the s8 row against the single-shard sibling.
    {"shard-diurnal", Backend::kVl, 0, 1},
    {"shard-diurnal", Backend::kVl, 0, 4},
    {"shard-diurnal", Backend::kVl, 0, 8},
    // Observability overhead guard: the same qos-incast/VL cell with an
    // epoch Timeline attached. Sampling lives outside the event loop, so
    // its event count must equal the plain row's exactly; the in-binary
    // assert below fails the bench if ev/msg drifts > 5%.
    {"qos-incast", Backend::kVl, 0, 0, true},
    // Graceful degradation under adversarial bulk: the plain row runs with
    // the QoS supervisor forced off (static quotas), the "(sup)" row with
    // the closed-loop AIMD controller re-carving quotas each epoch. The
    // lat_p99 column is the latency class's p99; bench_gate --expect-gain
    // pins the supervisor's latency win against the static sibling.
    {"qos-adversarial-bulk", Backend::kVl},
    {"qos-adversarial-bulk", Backend::kVl, 0, 0, false, true},
    // Collective workloads on the bsp::World layer ("wl-" prefix drives the
    // workload registry instead of a traffic scenario, at internal scale
    // 4x). The JSON baselines were measured on the pre-bsp hand-rolled
    // kernels, and CI gates these cells at 10% (--cell-tolerance): the BSP
    // rewrite must not cost more than 10% simulation work per message.
    {"wl-allreduce", Backend::kVl},
    {"wl-halo", Backend::kVl},
    {"wl-scatter-gather", Backend::kVl},
    // Record/replay round trip ("replay-" prefix records the preset's send
    // stream in memory, then re-runs the cell paced by the trace). The row
    // reports the replay run — its ev/msg tracks the TraceArrival
    // scheduling cost — and the in-binary check fails the bench unless the
    // replay reproduces the recorded run's delivered count exactly.
    {"replay-qos-incast", Backend::kVl},
};

/// "wl-<name>" rows bypass the traffic engine and run a registered
/// workload kernel; the row reports the event/tick/message figures in the
/// same columns (delivered = payload messages).
bool is_workload_row(const std::string& scenario) {
  return scenario.rfind("wl-", 0) == 0;
}

/// "replay-<preset>" rows exercise the record/replay plane end to end:
/// record the preset in memory, then replay it on the same cell.
bool is_replay_row(const std::string& scenario) {
  return scenario.rfind("replay-", 0) == 0;
}

struct Row {
  std::string scenario, backend;
  std::uint64_t events = 0, ticks = 0, delivered = 0, lat_p99 = 0;
  double wall_ms = 0.0, events_per_sec = 0.0, mticks_per_sec = 0.0,
         events_per_msg = 0.0;
  std::string digest;  ///< wl- rows: deterministic run digest for CI smoke.
};

// Latency-class p99 (the figure the QoS supervisor defends) when the run
// has latency-class traffic, otherwise the all-tenant aggregate p99.
std::uint64_t latency_p99(const vl::traffic::ScenarioMetrics& m) {
  for (const vl::traffic::ClassAgg& c : m.by_class())
    if (c.cls == vl::QosClass::kLatency) return c.agg.latency.percentile(99);
  vl::traffic::LogHistogram all;
  for (const vl::traffic::TenantMetrics& t : m.tenants) all.merge(t.latency);
  return all.percentile(99);
}

Row finish_row(Row row, std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  row.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  const double secs = row.wall_ms * 1e-3;
  row.events_per_sec = secs > 0 ? static_cast<double>(row.events) / secs : 0;
  row.mticks_per_sec =
      secs > 0 ? static_cast<double>(row.ticks) / secs / 1e6 : 0;
  row.events_per_msg =
      row.delivered
          ? static_cast<double>(row.events) / static_cast<double>(row.delivered)
          : 0;
  return row;
}

Row run_workload_row(const std::string& scenario, Backend backend,
                     int scale) {
  const std::string name = scenario.substr(3);
  vl::workloads::RunConfig rc = vl::workloads::default_config(name);
  rc.backend = backend;
  rc.scale = 4 * scale;  // baselines were measured at workload scale 4
  const auto t0 = std::chrono::steady_clock::now();
  const vl::workloads::WorkloadResult r = vl::workloads::run(name, rc);
  const auto t1 = std::chrono::steady_clock::now();

  Row row;
  row.scenario = scenario;
  row.backend = r.backend;
  row.events = r.events;
  row.ticks = r.ticks;
  row.delivered = r.messages;
  row.lat_p99 = 0;
  row.digest = r.digest();
  return finish_row(row, t0, t1);
}

/// Record the base preset's post-shed send stream in memory, then re-run
/// the same (scenario, backend, seed) cell with every producer paced by
/// the trace. The row reports the *replay* run; `fail` is set when the
/// replay does not reproduce the recorded delivered count exactly (the
/// headline conservation property CI gates on).
Row run_replay_row(const std::string& scenario, Backend backend,
                   std::uint64_t seed, int scale, bool* fail) {
  const std::string base = scenario.substr(7);
  vl::traffic::ScenarioSpec spec = *vl::traffic::find_scenario(base);
  spec.supervisor = false;  // match the plain bench row: static quotas
  vl::replay::TraceRecorder rec;
  vl::obs::RunHooks hooks;
  hooks.recorder = &rec;
  const vl::traffic::EngineResult recorded =
      vl::traffic::run_spec(spec, backend, seed, scale, &hooks);
  const vl::replay::Trace trace = rec.finish();

  vl::traffic::ScenarioSpec rspec = *vl::traffic::find_scenario(base);
  rspec.supervisor = false;
  rspec.replay = &trace;
  const auto t0 = std::chrono::steady_clock::now();
  const vl::traffic::EngineResult r =
      vl::traffic::run_spec(rspec, backend, seed, scale);
  const auto t1 = std::chrono::steady_clock::now();
  if (r.metrics.total_delivered() != recorded.metrics.total_delivered()) {
    std::fprintf(
        stderr, "FAIL: %s/%s replay delivered %llu != recorded %llu\n",
        scenario.c_str(), r.backend.c_str(),
        static_cast<unsigned long long>(r.metrics.total_delivered()),
        static_cast<unsigned long long>(recorded.metrics.total_delivered()));
    if (fail) *fail = true;
  }

  Row row;
  row.scenario = scenario;
  row.backend = r.backend;
  row.events = r.events;
  row.ticks = r.metrics.ticks;
  row.delivered = r.metrics.total_delivered();
  row.lat_p99 = latency_p99(r.metrics);
  return finish_row(row, t0, t1);
}

Row run_one(const std::string& scenario, Backend backend, std::uint64_t seed,
            int scale, std::uint32_t batch = 0, int shards = 0,
            bool timeline = false, bool sup = false,
            const std::string& faults = "", bool* replay_fail = nullptr) {
  if (is_workload_row(scenario)) return run_workload_row(scenario, backend, scale);
  if (is_replay_row(scenario))
    return run_replay_row(scenario, backend, seed, scale, replay_fail);
  vl::traffic::ScenarioSpec spec = *vl::traffic::find_scenario(scenario);
  // Benchmark rows control the supervisor explicitly: the plain
  // qos-adversarial-bulk row measures static quotas even though the preset
  // defaults the supervisor on.
  spec.supervisor = sup;
  if (!faults.empty()) spec.faults = vl::fault::FaultSpec::parse(faults);
  vl::obs::Timeline tl;
  vl::obs::RunHooks hooks;
  hooks.timeline = &tl;
  const vl::obs::RunHooks* obs = timeline ? &hooks : nullptr;
  const auto t0 = std::chrono::steady_clock::now();
  vl::traffic::EngineResult r;
  if (shards > 0) {
    vl::traffic::ShardedOptions opts;
    opts.shards = shards;
    opts.obs = obs;
    r = vl::traffic::run_sharded(spec, backend, seed, opts, scale).engine;
  } else {
    r = batch ? vl::traffic::run_spec(vl::traffic::with_batch(spec, batch),
                                      backend, seed, scale)
              : vl::traffic::run_spec(spec, backend, seed, scale, obs);
  }
  const auto t1 = std::chrono::steady_clock::now();

  Row row;
  // Batched/sharded/timeline cells are their own (scenario, backend) key in
  // BENCH_sim.json, so the perf gate tracks each variant separately; the
  // single-shard mesh keeps the plain name — it is the sibling baseline
  // the "(sN)" rows are gated against, and the plain qos-incast row is the
  // baseline the "(tl)" overhead guard compares against.
  row.scenario = batch        ? scenario + "(b" + std::to_string(batch) + ")"
                 : shards > 1 ? scenario + "(s" + std::to_string(shards) + ")"
                 : timeline   ? scenario + "(tl)"
                 : sup        ? scenario + "(sup)"
                              : scenario;
  row.backend = r.backend;
  row.events = r.events;
  row.ticks = r.metrics.ticks;
  row.delivered = r.metrics.total_delivered();
  row.lat_p99 = latency_p99(r.metrics);
  return finish_row(row, t0, t1);
}

void write_json(const char* path, const std::vector<Row>& rows,
                std::uint64_t seed, int scale) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "sim_throughput: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sim_throughput\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n  \"scale\": %d,\n",
               static_cast<unsigned long long>(seed), scale);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"backend\": \"%s\", "
        "\"events\": %llu, \"sim_ticks\": %llu, \"delivered\": %llu, "
        "\"lat_p99\": %llu, "
        "\"wall_ms\": %.3f, \"events_per_sec\": %.0f, "
        "\"sim_mticks_per_sec\": %.3f, \"events_per_msg\": %.2f}%s\n",
        r.scenario.c_str(), r.backend.c_str(),
        static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.ticks),
        static_cast<unsigned long long>(r.delivered),
        static_cast<unsigned long long>(r.lat_p99), r.wall_ms,
        r.events_per_sec, r.mticks_per_sec, r.events_per_msg,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--list") == 0) {
      std::printf("scenario presets (--scenario NAME):\n");
      for (const auto& name : vl::traffic::scenario_names()) {
        const auto* s = vl::traffic::find_scenario(name);
        std::printf("  %-18s %s\n", name.c_str(), s->summary.c_str());
      }
      std::printf("\nregistered workloads (--scenario wl-NAME):\n");
      for (const auto* w : vl::workloads::all_workloads())
        std::printf("  wl-%-15s %s\n", w->name, w->summary);
      std::printf("\nany preset also runs as replay-NAME "
                  "(record in memory, then replay the trace).\n");
      return 0;
    }
  const std::string scenario = arg_value(argc, argv, "--scenario", "");
  const std::string backend_s = arg_value(argc, argv, "--backend", "");
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(arg_value(argc, argv, "--seed", "42"), nullptr, 10));
  const int scale = vl::bench::arg_scale(argc, argv, 1);
  const auto batch = static_cast<std::uint32_t>(
      std::strtoul(arg_value(argc, argv, "--batch", "0"), nullptr, 10));
  const int shards = static_cast<int>(
      std::strtol(arg_value(argc, argv, "--shards", "0"), nullptr, 10));
  const char* out = arg_value(argc, argv, "--out", "BENCH_sim.json");
  const std::string digest_path = arg_value(argc, argv, "--digest", "");
  const std::string faults = arg_value(argc, argv, "--faults", "");
  bool no_supervisor = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--no-supervisor") == 0) no_supervisor = true;
  if (!faults.empty()) {
    try {
      const auto fs = vl::fault::FaultSpec::parse(faults);
      std::fprintf(stderr, "faults: %s\n", fs.summary().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --faults spec: %s\n", e.what());
      return 2;
    }
  }

  std::vector<RunSpec> matrix;
  if (!scenario.empty() || !backend_s.empty()) {
    const std::string sc = scenario.empty() ? "incast-burst" : scenario;
    if (is_workload_row(sc)) {
      if (!vl::workloads::find_workload(sc.substr(3))) {
        std::fprintf(stderr, "unknown workload '%s'\n", sc.c_str() + 3);
        return 2;
      }
    } else if (is_replay_row(sc)) {
      if (!vl::traffic::find_scenario(sc.substr(7))) {
        std::fprintf(stderr, "unknown scenario '%s' (for replay row '%s')\n",
                     sc.c_str() + 7, sc.c_str());
        return 2;
      }
      if (batch || shards > 0) {
        std::fprintf(stderr,
                     "replay rows record and re-run the plain cell; they do "
                     "not combine with --batch/--shards\n");
        return 2;
      }
    } else if (!vl::traffic::find_scenario(sc)) {
      std::fprintf(stderr, "unknown scenario '%s'\n", sc.c_str());
      return 2;
    }
    std::vector<Backend> bs;
    if (backend_s.empty() || backend_s == "all") {
      bs = {Backend::kBlfq, Backend::kZmq, Backend::kVl, Backend::kVlIdeal,
            Backend::kCaf};
    } else if (auto b = parse_backend(backend_s)) {
      bs = {*b};
    } else {
      std::fprintf(stderr, "unknown backend '%s'\n", backend_s.c_str());
      return 2;
    }
    // CLI cells honor the preset's supervisor default unless --no-supervisor
    // (replay rows always run static quotas so record and replay match).
    const bool sup = !is_workload_row(sc) && !is_replay_row(sc) &&
                     vl::traffic::find_scenario(sc)->supervisor &&
                     !no_supervisor;
    for (Backend b : bs) matrix.push_back({sc, b, batch, shards, false, sup});
  } else {
    matrix.assign(std::begin(kDefaultMatrix), std::end(kDefaultMatrix));
  }

  vl::bench::print_header("sim_throughput",
                          "kernel events & host throughput per scenario");
  std::vector<Row> rows;
  bool replay_fail = false;
  for (const RunSpec& rs : matrix)
    rows.push_back(run_one(rs.scenario, rs.backend, seed, scale, rs.batch,
                           rs.shards, rs.timeline, rs.sup, faults,
                           &replay_fail));

  vl::TextTable tt({"scenario", "backend", "events", "sim_ticks", "delivered",
                    "lat_p99", "ev/msg", "wall_ms", "events/s", "Mticks/s"});
  for (const Row& r : rows)
    tt.add_row({r.scenario, r.backend, std::to_string(r.events),
                std::to_string(r.ticks), std::to_string(r.delivered),
                std::to_string(r.lat_p99),
                vl::TextTable::num(r.events_per_msg, 1),
                vl::TextTable::num(r.wall_ms, 1),
                vl::TextTable::num(r.events_per_sec, 0),
                vl::TextTable::num(r.mticks_per_sec, 2)});
  std::printf("%s\n", tt.render().c_str());

  write_json(out, rows, seed, scale);

  // Deterministic digest lines for the wl- rows (CI runs this twice and
  // cmps the files: identical simulations must produce identical digests).
  if (!digest_path.empty()) {
    std::FILE* df = std::fopen(digest_path.c_str(), "w");
    if (!df) {
      std::fprintf(stderr, "sim_throughput: cannot write %s\n",
                   digest_path.c_str());
      return 2;
    }
    for (const Row& r : rows)
      if (!r.digest.empty()) std::fprintf(df, "%s\n", r.digest.c_str());
    std::fclose(df);
    std::fprintf(stderr, "wrote %s\n", digest_path.c_str());
  }

  // Observability overhead guard: every "(tl)" row must stay within 5% of
  // its plain sibling's ev/msg. Timeline sampling runs outside the event
  // loop, so the expected delta is exactly zero — a violation means
  // someone made observation schedule events.
  int rc = replay_fail ? 1 : 0;
  for (const Row& r : rows) {
    const std::string suffix = "(tl)";
    if (r.scenario.size() <= suffix.size() ||
        r.scenario.compare(r.scenario.size() - suffix.size(), suffix.size(),
                           suffix) != 0)
      continue;
    const std::string base = r.scenario.substr(0, r.scenario.size() - 4);
    for (const Row& b : rows) {
      if (b.scenario != base || b.backend != r.backend) continue;
      const double delta =
          b.events_per_msg > 0
              ? (r.events_per_msg - b.events_per_msg) / b.events_per_msg
              : 0.0;
      if (delta > 0.05) {
        std::fprintf(stderr,
                     "FAIL: %s/%s ev/msg %.2f exceeds plain %.2f by %.1f%% "
                     "(budget 5%%)\n",
                     r.scenario.c_str(), r.backend.c_str(), r.events_per_msg,
                     b.events_per_msg, delta * 100.0);
        rc = 1;
      } else {
        std::fprintf(stderr, "obs overhead guard: %s/%s ev/msg %.2f vs %.2f "
                     "(%+.2f%%) within 5%% budget\n",
                     r.scenario.c_str(), r.backend.c_str(), r.events_per_msg,
                     b.events_per_msg, delta * 100.0);
      }
    }
  }
  return rc;
}
