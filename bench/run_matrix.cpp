// Full experiment matrix -> CSV. Runs every *registered* workload (Table II
// plus the extension collectives and the bsp-native kernels) over every
// queue backend on the Table III machine and writes one CSV row per run
// with timing, coherence, DRAM and device counters — the raw data behind
// Figs. 11-13 in machine-readable form. The row set comes straight from
// the workload registry: a new kernel TU shows up here with no edits.
//
//   $ ./bench/run_matrix [--scale N] [--out results.csv]
//
// Stdout gets a short progress log; the CSV goes to --out (default
// vl_matrix.csv in the working directory).

#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "workloads/runner.hpp"

namespace {

using namespace vl;
using squeue::Backend;

const char* arg_out(int argc, char** argv, const char* def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--out") == 0) return argv[i + 1];
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = vl::bench::arg_scale(argc, argv);
  const char* out_path = arg_out(argc, argv, "vl_matrix.csv");
  vl::bench::print_header("Run matrix", "all workloads x all backends -> CSV");

  CsvWriter csv({"workload", "backend", "scale", "ticks", "ns", "messages",
                 "ns_per_msg", "snoops", "invalidations", "upgrades",
                 "l1_hits", "l1_misses", "dram_reads", "dram_writes",
                 "injections", "vlrd_pushes", "vlrd_push_nacks",
                 "vlrd_matches", "vlrd_inject_retries"});

  for (const std::string& name : workloads::workload_names()) {
    for (Backend b : {Backend::kBlfq, Backend::kZmq, Backend::kVl,
                      Backend::kVlIdeal, Backend::kCaf}) {
      workloads::RunConfig rc = workloads::default_config(name);
      rc.backend = b;
      rc.scale = scale;
      const auto r = workloads::run(name, rc);
      csv.add()
          .col(r.workload)
          .col(std::string(squeue::to_string(b)))
          .col(static_cast<std::uint64_t>(scale))
          .col(r.ticks)
          .col(r.ns, 1)
          .col(r.messages)
          .col(r.ns_per_msg(), 2)
          .col(r.mem.snoops)
          .col(r.mem.invalidations)
          .col(r.mem.upgrades)
          .col(r.mem.l1_hits)
          .col(r.mem.l1_misses)
          .col(r.mem.dram_reads)
          .col(r.mem.dram_writes)
          .col(r.mem.injections)
          .col(r.vlrd.pushes)
          .col(r.vlrd.push_nacks)
          .col(r.vlrd.matches)
          .col(r.vlrd.inject_retry);
      std::printf("  %-14s %-9s %14.0f ns  %8llu msgs\n", name.c_str(),
                  squeue::to_string(b), r.ns,
                  static_cast<unsigned long long>(r.messages));
    }
  }

  std::ofstream f(out_path);
  f << csv.str();
  std::printf("\nwrote %zu rows to %s\n", csv.rows_written() - 1, out_path);
  return f.good() ? 0 : 1;
}
