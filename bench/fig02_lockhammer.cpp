// Fig. 2 — lockhammer: ns per lock acquisition for a CAS lock, ticket
// lock, and spin lock as contending cores grow (paper: by 14 cores all
// cost ~1000 ns on Platform 1).
//
// Native sweep on host threads plus the simulated sweep on the Table III
// machine (where the cost is pure modelled coherence).

#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "native/lockhammer.hpp"
#include "runtime/machine.hpp"
#include "squeue/locks.hpp"

namespace {

using namespace vl;

double sim_ns_per_acquire(squeue::SimLock& (*make)(runtime::Machine&),
                          int threads, int per_thread) {
  runtime::Machine m;
  squeue::SimLock& lock = make(m);
  for (int c = 0; c < threads; ++c) {
    sim::spawn([](squeue::SimLock& l, sim::SimThread t, int n) -> sim::Co<void> {
      for (int i = 0; i < n; ++i) {
        co_await l.acquire(t);
        co_await l.release(t);
      }
    }(lock, m.thread_on(static_cast<CoreId>(c)), per_thread));
  }
  m.run();
  return m.ns(m.now()) / static_cast<double>(threads * per_thread);
}

// Lock factories with static storage so references stay valid per run.
squeue::SimLock& make_cas(runtime::Machine& m) {
  static std::unique_ptr<squeue::SimCasLock> l;
  l = std::make_unique<squeue::SimCasLock>(m);
  return *l;
}
squeue::SimLock& make_spin(runtime::Machine& m) {
  static std::unique_ptr<squeue::SimSpinLock> l;
  l = std::make_unique<squeue::SimSpinLock>(m);
  return *l;
}
squeue::SimLock& make_ticket(runtime::Machine& m) {
  static std::unique_ptr<squeue::SimTicketLock> l;
  l = std::make_unique<squeue::SimTicketLock>(m);
  return *l;
}
squeue::SimLock& make_mcs(runtime::Machine& m) {
  static std::unique_ptr<squeue::SimMcsLock> l;
  l = std::make_unique<squeue::SimMcsLock>(m);
  return *l;
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = vl::bench::arg_scale(argc, argv);
  vl::bench::print_header(
      "Figure 2", "lockhammer: ns per acquire vs contending threads");

  std::printf("\n-- native host threads --\n");
  TextTable nat({"threads", "cas_lock", "ticket_lock", "spin_lock",
                 "mcs_lock (ext)"});
  for (int th : {1, 2, 4, 8, 14, 16}) {
    const auto cas =
        native::run_lockhammer(native::LockKind::kCas, th, 4000u * scale);
    const auto tick =
        native::run_lockhammer(native::LockKind::kTicket, th, 4000u * scale);
    const auto spin =
        native::run_lockhammer(native::LockKind::kSpin, th, 4000u * scale);
    const auto mcs =
        native::run_lockhammer(native::LockKind::kMcs, th, 4000u * scale);
    nat.add_row({std::to_string(th), TextTable::num(cas.ns_per_op, 0),
                 TextTable::num(tick.ns_per_op, 0),
                 TextTable::num(spin.ns_per_op, 0),
                 TextTable::num(mcs.ns_per_op, 0)});
  }
  std::printf("%s", nat.render().c_str());

  std::printf("\n-- simulated Table III machine --\n");
  TextTable sim({"threads", "cas_lock", "ticket_lock", "spin_lock",
                 "mcs_lock (ext)"});
  for (int th : {1, 2, 4, 8, 14, 16}) {
    sim.add_row({std::to_string(th),
                 TextTable::num(sim_ns_per_acquire(make_cas, th, 40 * scale), 0),
                 TextTable::num(sim_ns_per_acquire(make_ticket, th, 40 * scale), 0),
                 TextTable::num(sim_ns_per_acquire(make_spin, th, 40 * scale), 0),
                 TextTable::num(sim_ns_per_acquire(make_mcs, th, 40 * scale), 0)});
  }
  std::printf("%s\n", sim.render().c_str());
  std::printf("Expected shape: the paper's three locks rise steeply with "
              "contention, reaching O(1000 ns) per acquisition at high "
              "thread counts; the MCS extension grows far more gently "
              "(local spinning, handoff on a private line).\n");
  return 0;
}
