// Scenario runner CLI: drive any registered traffic scenario over any (or
// every) queue backend and emit per-tenant percentile metrics.
//
//   scenario_runner --scenario incast-burst --backend vl --seed 42
//   scenario_runner --scenario all --backend all --scale 2
//   scenario_runner --list
//
// CSV goes to stdout (byte-identical across runs for fixed arguments —
// the simulation is fully deterministic); human-readable tables go to
// stderr so redirecting stdout yields a clean data file.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "traffic/engine.hpp"

namespace {

using vl::squeue::Backend;

std::optional<Backend> parse_backend(const std::string& s) {
  if (s == "blfq") return Backend::kBlfq;
  if (s == "zmq") return Backend::kZmq;
  if (s == "vl") return Backend::kVl;
  if (s == "vlideal" || s == "vl-ideal") return Backend::kVlIdeal;
  if (s == "caf") return Backend::kCaf;
  return std::nullopt;
}

const char* arg_value(int argc, char** argv, const char* flag,
                      const char* def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return def;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

void print_usage() {
  std::fprintf(stderr,
               "usage: scenario_runner [--scenario NAME|all] [--backend "
               "blfq|zmq|vl|vlideal|caf|all]\n"
               "                       [--seed N] [--scale N] [--list] "
               "[--quiet]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h")) {
    print_usage();
    return 0;
  }
  if (has_flag(argc, argv, "--list")) {
    for (const auto& name : vl::traffic::scenario_names()) {
      const auto* s = vl::traffic::find_scenario(name);
      std::printf("%-18s %s (%s, %d producers, %zu tenants)\n", name.c_str(),
                  s->summary.c_str(), to_string(s->topology), s->producers,
                  s->tenants.size());
    }
    return 0;
  }

  const std::string scenario = arg_value(argc, argv, "--scenario", "all");
  const std::string backend_s = arg_value(argc, argv, "--backend", "all");
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(arg_value(argc, argv, "--seed", "42"), nullptr, 10));
  const int scale = vl::bench::arg_scale(argc, argv, 1);
  const bool quiet = has_flag(argc, argv, "--quiet");

  std::vector<std::string> scenarios;
  if (scenario == "all") {
    scenarios = vl::traffic::scenario_names();
  } else if (vl::traffic::find_scenario(scenario)) {
    scenarios.push_back(scenario);
  } else {
    std::fprintf(stderr, "unknown scenario '%s'; --list shows presets\n",
                 scenario.c_str());
    return 2;
  }

  std::vector<Backend> backends;
  if (backend_s == "all") {
    backends = {Backend::kBlfq, Backend::kZmq, Backend::kVl,
                Backend::kVlIdeal, Backend::kCaf};
  } else if (auto b = parse_backend(backend_s)) {
    backends.push_back(*b);
  } else {
    std::fprintf(stderr, "unknown backend '%s'\n", backend_s.c_str());
    print_usage();
    return 2;
  }

  bool header_done = false;
  for (const auto& name : scenarios) {
    for (Backend b : backends) {
      const vl::traffic::EngineResult r =
          vl::traffic::run_scenario(name, b, seed, scale);
      // One shared CSV header across the whole sweep.
      const std::string csv = r.csv();
      const std::size_t nl = csv.find('\n');
      std::fputs(header_done ? csv.c_str() + nl + 1 : csv.c_str(), stdout);
      header_done = true;
      if (!quiet) std::fprintf(stderr, "%s\n", r.table().c_str());
    }
  }
  return 0;
}
