// Scenario runner CLI: drive any registered traffic scenario over any (or
// every) queue backend and emit per-tenant percentile metrics.
//
//   scenario_runner --scenario incast-burst --backend vl --seed 42
//   scenario_runner --scenario all --backend all --scale 2
//   scenario_runner --scenario qos-incast --backend caf --no-qos
//   scenario_runner --scenario incast-burst --backend vl --batch 8
//   scenario_runner --sweep --scales 1,2,4 --batches 1,8
//   scenario_runner --list
//   scenario_runner --scenario qos-incast --backend vl --timeline tl.csv
//       --sample-every 5000 --trace trace.json --metrics-json metrics.json
//
// CSV goes to stdout (byte-identical across runs for fixed arguments —
// the simulation is fully deterministic); human-readable tables go to
// stderr so redirecting stdout yields a clean data file.
//
// --sweep runs the selected scenarios over every (backend, scale) cell and
// prints a geomean summary table: per cell, the geometric mean across
// scenarios of delivered Mmsgs/s and of simulated ticks — the Fig.-style
// scaling view over the whole preset suite.

#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/hooks.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "replay/lifecycle.hpp"
#include "replay/trace.hpp"
#include "replay/warm_restart.hpp"
#include "traffic/engine.hpp"
#include "traffic/sharded_engine.hpp"
#include "workloads/runner.hpp"

namespace {

using vl::bench::arg_value;
using vl::bench::parse_backend;
using vl::squeue::Backend;

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

void print_usage() {
  std::fprintf(stderr,
               "usage: scenario_runner [--scenario NAME|all] [--backend "
               "blfq|zmq|vl|vlideal|caf|all]\n"
               "                       [--seed N] [--scale N] [--batch N] "
               "[--list] [--quiet] [--no-qos]\n"
               "                       [--sweep [--scales N,N,..] "
               "[--batches N,N,..]]\n"
               "                       [--shards N [--sim-threads N] "
               "[--tenants N]]\n"
               "  --no-qos  run with tenant QoS classes recorded but not\n"
               "            enforced in hardware (ablation baseline)\n"
               "  --batch   override every tenant's injection batch\n"
               "            (TenantSpec::batch; 0 keeps preset values)\n"
               "  --shards  run the sharded mesh engine with N shards\n"
               "            (needs a preset with a sharding block)\n"
               "  --sim-threads  step shards on N host threads; output is\n"
               "            byte-identical to sequential stepping\n"
               "  --tenants override the sharded tenant population\n"
               "  --timeline FILE  sample an epoch time-series into FILE\n"
               "            (.json for JSON, anything else long-form CSV);\n"
               "            single (scenario, backend) cell only\n"
               "  --sample-every N  timeline sampling period in sim ticks\n"
               "            (classic engine; sharded runs sample at every\n"
               "            lookahead barrier instead)\n"
               "  --trace FILE  write a Chrome-trace JSON of the run\n"
               "            (load in Perfetto / chrome://tracing);\n"
               "            single cell only\n"
               "  --metrics-json FILE  dump end-of-run ScenarioMetrics\n"
               "            (incl. per-class rows) as a JSON runs array\n"
               "  --faults SPEC  deterministic fault schedule (see\n"
               "            fault/spec.hpp grammar), e.g.\n"
               "            'stall@20000+30000;spike@10000+5000:extra=256'\n"
               "            or 'rand:7' — overrides the preset's schedule\n"
               "  --no-supervisor  disable the closed-loop QoS supervisor\n"
               "            on presets that enable it (ablation baseline)\n"
               "  --assert-slo CLASS=PCT  exit non-zero unless CLASS's SLO\n"
               "            attainment is >= PCT in every cell (CI gate),\n"
               "            e.g. --assert-slo latency=90\n"
               "  --record FILE  tap the engine send boundary and save the\n"
               "            per-message trace (.csv or binary by extension);\n"
               "            single cell only\n"
               "  --replay FILE  drive the run from a recorded trace instead\n"
               "            of the preset's arrival processes; single cell,\n"
               "            shape (scenario/producers/tenants) must match\n"
               "  --churn SPEC  lifecycle events (replay/lifecycle.hpp\n"
               "            grammar), e.g.\n"
               "            'leave@30000:tenant=bulk;join@45000:tenant=bulk'\n"
               "            or 'reconfig@20000' (VL backends only); classic\n"
               "            engine only. Exit 4 on a conservation violation\n"
               "  --warm-restart  run the snapshot/rebuild/restore drill on\n"
               "            the selected device backend (vl|vlideal|caf)\n"
               "            and print its one-line report\n");
}

/// Run one (scenario, backend) cell, honouring the --no-qos ablation and
/// the --batch override (0 = keep the preset's per-tenant batches). With
/// shards > 0 the cell runs on the sharded mesh engine instead (the
/// merged EngineResult keeps the single-shard CSV/table shape), with
/// --tenants overriding the preset's logical population.
vl::traffic::EngineResult run_cell(const std::string& name, Backend b,
                                   std::uint64_t seed, int scale,
                                   bool no_qos, std::uint32_t batch,
                                   int shards = 0, int sim_threads = 1,
                                   std::uint64_t tenants = 0,
                                   const vl::obs::RunHooks* obs = nullptr,
                                   bool no_supervisor = false,
                                   const std::string& faults = "",
                                   const std::string& churn = "",
                                   const vl::replay::Trace* replay = nullptr) {
  const vl::traffic::ScenarioSpec* spec = vl::traffic::find_scenario(name);
  if (!spec) throw std::invalid_argument("unknown scenario: " + name);
  vl::traffic::ScenarioSpec run = *spec;
  if (no_qos && run.qos) run.qos = false;
  if (no_supervisor) run.supervisor = false;
  if (!faults.empty()) run.faults = vl::fault::FaultSpec::parse(faults);
  if (!churn.empty()) run.lifecycle = vl::replay::LifecycleSpec::parse(churn);
  run.replay = replay;
  if (batch) run = vl::traffic::with_batch(run, batch);
  if (shards > 0) {
    vl::traffic::ShardedOptions opts;
    opts.shards = shards;
    opts.sim_threads = sim_threads;
    opts.population = tenants;
    opts.obs = obs;
    const vl::traffic::ShardedResult r =
        vl::traffic::run_sharded(run, b, seed, opts, scale);
    std::fprintf(stderr,
                 "sharded: shards=%d sim_threads=%d cross_shard=%llu "
                 "epochs=%llu window_stalls=%llu rebalanced=%llu\n",
                 r.shards, r.sim_threads,
                 static_cast<unsigned long long>(r.cross_shard),
                 static_cast<unsigned long long>(r.epochs),
                 static_cast<unsigned long long>(r.window_stalls),
                 static_cast<unsigned long long>(r.rebalanced));
    return r.engine;
  }
  return vl::traffic::run_spec(run, b, seed, scale, obs);
}

/// Write `text` to `path`; exits the process on I/O failure so a silently
/// missing artifact can't pass CI.
void write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

std::vector<int> parse_scales(const char* s) {
  std::vector<int> out;
  int cur = 0;
  bool have = false;
  for (const char* p = s;; ++p) {
    if (*p >= '0' && *p <= '9') {
      cur = cur * 10 + (*p - '0');
      have = true;
    } else if (*p == ',' || *p == '\0') {
      if (have && cur > 0) out.push_back(cur);
      cur = 0;
      have = false;
      if (*p == '\0') break;
    } else {
      return {};
    }
  }
  return out;
}

int run_sweep(const std::vector<std::string>& scenarios,
              const std::vector<Backend>& backends,
              const std::vector<int>& scales, const std::vector<int>& batches,
              std::uint64_t seed, bool no_qos, bool no_supervisor,
              const std::string& faults) {
  vl::TextTable tt({"backend", "scale", "batch", "scenarios",
                    "geomean_Mmsg/s", "geomean_ticks", "geomean_ev/msg",
                    "geomean_p99_lat", "slo_att_%"});
  for (Backend b : backends) {
    for (int scale : scales) {
      for (int batch : batches) {
      std::vector<double> rates, ticks, evpm, lat_p99s;
      std::uint64_t slo_delivered = 0, slo_within = 0;
      for (const auto& name : scenarios) {
        const vl::traffic::EngineResult r = run_cell(
            name, b, seed, scale, no_qos, static_cast<std::uint32_t>(batch),
            0, 1, 0, nullptr, no_supervisor, faults);
        const double secs = r.metrics.ns * 1e-9;
        const auto delivered = r.metrics.total_delivered();
        rates.push_back(secs > 0
                            ? static_cast<double>(delivered) / secs / 1e6
                            : 0.0);
        ticks.push_back(static_cast<double>(r.metrics.ticks));
        evpm.push_back(delivered ? static_cast<double>(r.events) /
                                       static_cast<double>(delivered)
                                 : 0.0);
        // Per-class view: the latency class's p99 across the scenarios that
        // define one, and overall SLO attainment across SLO-carrying
        // tenants — the sweep-level QoS figures of merit.
        for (const auto& c : r.metrics.by_class()) {
          if (c.cls == vl::QosClass::kLatency && c.agg.delivered)
            lat_p99s.push_back(
                static_cast<double>(c.agg.latency.percentile(99)));
          slo_delivered += c.slo_delivered;
          slo_within += c.slo_within;
        }
        std::fprintf(stderr,
                     "sweep: %s backend=%s scale=%d batch=%d ticks=%llu\n",
                     name.c_str(), r.backend.c_str(), scale, batch,
                     static_cast<unsigned long long>(r.metrics.ticks));
      }
      tt.add_row({to_string(b), std::to_string(scale), std::to_string(batch),
                  std::to_string(scenarios.size()),
                  vl::TextTable::num(vl::geomean(rates), 3),
                  vl::TextTable::num(vl::geomean(ticks), 0),
                  vl::TextTable::num(vl::geomean(evpm), 1),
                  lat_p99s.empty()
                      ? std::string("-")
                      : vl::TextTable::num(vl::geomean(lat_p99s), 0),
                  slo_delivered
                      ? vl::TextTable::num(100.0 *
                                               static_cast<double>(slo_within) /
                                               static_cast<double>(
                                                   slo_delivered),
                                           1)
                      : std::string("-")});
      }
    }
  }
  std::printf("%s", tt.render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h")) {
    print_usage();
    return 0;
  }
  if (has_flag(argc, argv, "--list")) {
    std::printf("scenario presets (--scenario NAME):\n");
    for (const auto& name : vl::traffic::scenario_names()) {
      const auto* s = vl::traffic::find_scenario(name);
      std::printf("  %-18s %s (%s, %d producers, %zu tenants)\n", name.c_str(),
                  s->summary.c_str(), to_string(s->topology), s->producers,
                  s->tenants.size());
    }
    std::printf("\nregistered workloads (bench_sim_throughput --scenario "
                "wl-NAME):\n");
    for (const auto* w : vl::workloads::all_workloads())
      std::printf("  %-18s %s\n", w->name, w->summary);
    return 0;
  }

  const std::string scenario = arg_value(argc, argv, "--scenario", "all");
  const std::string backend_s = arg_value(argc, argv, "--backend", "all");
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(arg_value(argc, argv, "--seed", "42"), nullptr, 10));
  const int scale = vl::bench::arg_scale(argc, argv, 1);
  const auto batch = static_cast<std::uint32_t>(
      std::strtoul(arg_value(argc, argv, "--batch", "0"), nullptr, 10));
  const bool quiet = has_flag(argc, argv, "--quiet");
  const bool no_qos = has_flag(argc, argv, "--no-qos");
  const int shards = static_cast<int>(
      std::strtol(arg_value(argc, argv, "--shards", "0"), nullptr, 10));
  const int sim_threads = static_cast<int>(
      std::strtol(arg_value(argc, argv, "--sim-threads", "1"), nullptr, 10));
  const auto tenants = static_cast<std::uint64_t>(
      std::strtoull(arg_value(argc, argv, "--tenants", "0"), nullptr, 10));
  const std::string timeline_path = arg_value(argc, argv, "--timeline", "");
  const std::string trace_path = arg_value(argc, argv, "--trace", "");
  const std::string metrics_json_path =
      arg_value(argc, argv, "--metrics-json", "");
  const auto sample_every = static_cast<vl::Tick>(
      std::strtoull(arg_value(argc, argv, "--sample-every", "10000"), nullptr,
                    10));
  const bool no_supervisor = has_flag(argc, argv, "--no-supervisor");
  const std::string faults = arg_value(argc, argv, "--faults", "");
  bool chan_faults = false;  // loss/dup clauses present in --faults
  if (!faults.empty()) {
    try {
      const vl::fault::FaultSpec fs = vl::fault::FaultSpec::parse(faults);
      chan_faults = fs.has(vl::fault::FaultKind::kChanLoss) ||
                    fs.has(vl::fault::FaultKind::kChanDup);
      std::fprintf(stderr, "faults: %s\n", fs.summary().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  const std::string record_path = arg_value(argc, argv, "--record", "");
  const std::string replay_path = arg_value(argc, argv, "--replay", "");
  const std::string churn = arg_value(argc, argv, "--churn", "");
  const bool warm_restart = has_flag(argc, argv, "--warm-restart");
  vl::replay::LifecycleSpec churn_spec;
  if (!churn.empty()) {
    try {
      churn_spec = vl::replay::LifecycleSpec::parse(churn);
      std::fprintf(stderr, "churn: %s\n", churn_spec.summary().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  // --assert-slo CLASS=PCT: the CI chaos-smoke gate.
  const std::string assert_slo = arg_value(argc, argv, "--assert-slo", "");
  std::string slo_class;
  double slo_threshold = 0.0;
  if (!assert_slo.empty()) {
    const auto eq = assert_slo.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "--assert-slo needs CLASS=PCT\n");
      return 2;
    }
    slo_class = assert_slo.substr(0, eq);
    slo_threshold = std::strtod(assert_slo.c_str() + eq + 1, nullptr);
  }

  std::vector<std::string> scenarios;
  if (scenario == "all") {
    scenarios = vl::traffic::scenario_names();
  } else if (vl::traffic::find_scenario(scenario)) {
    scenarios.push_back(scenario);
  } else {
    std::fprintf(stderr, "unknown scenario '%s'; --list shows presets\n",
                 scenario.c_str());
    return 2;
  }

  std::vector<Backend> backends;
  if (backend_s == "all") {
    backends = {Backend::kBlfq, Backend::kZmq, Backend::kVl,
                Backend::kVlIdeal, Backend::kCaf};
  } else if (auto b = parse_backend(backend_s)) {
    backends.push_back(*b);
  } else {
    std::fprintf(stderr, "unknown backend '%s'\n", backend_s.c_str());
    print_usage();
    return 2;
  }

  // Feature/backend gates: name the unsupported combination instead of
  // silently ignoring the flag (the engines would run, minus the feature).
  for (Backend b : backends) {
    const bool software = b == Backend::kBlfq || b == Backend::kZmq;
    if (chan_faults && !software) {
      std::fprintf(stderr,
                   "unsupported combination: --faults loss/dup with "
                   "--backend %s — channel loss/dup faults mutate the "
                   "software rings only (blfq, zmq); the device backends "
                   "gate them off\n",
                   to_string(b));
      return 2;
    }
    if (churn_spec.has_reconfig() && b != Backend::kVl &&
        b != Backend::kVlIdeal) {
      std::fprintf(stderr,
                   "unsupported combination: --churn reconfig@ with "
                   "--backend %s — SQI re-registration exists only on the "
                   "VL backends (vl, vlideal)\n",
                   to_string(b));
      return 2;
    }
  }
  if (!record_path.empty() && !replay_path.empty()) {
    std::fprintf(stderr,
                 "unsupported combination: --record with --replay — a "
                 "replayed run would re-record its own input; pick one\n");
    return 2;
  }
  if (!replay_path.empty() && chan_faults) {
    std::fprintf(stderr,
                 "unsupported combination: --replay with --faults loss/dup "
                 "— a trace is the post-shed stream, loss/dup are already "
                 "reflected in the recorded ticks\n");
    return 2;
  }
  if (!churn.empty() && shards > 0) {
    std::fprintf(stderr,
                 "unsupported combination: --churn with --shards — "
                 "lifecycle events run on the classic engine only\n");
    return 2;
  }

  if (warm_restart) {
    for (Backend b : backends)
      if (b == Backend::kBlfq || b == Backend::kZmq) {
        std::fprintf(stderr,
                     "unsupported combination: --warm-restart with "
                     "--backend %s — the software rings keep their state in "
                     "host memory; only the device backends (vl, vlideal, "
                     "caf) have restorable device state. Pick --backend "
                     "vl|vlideal|caf\n",
                     to_string(b));
        return 2;
      }
    for (Backend b : backends) {
      const vl::replay::WarmRestartReport rep =
          vl::replay::run_warm_restart(b, seed);
      std::printf("%s\n", rep.text().c_str());
      if (!rep.conserved()) {
        std::fprintf(stderr, "warm-restart: conservation FAILED\n");
        return 4;
      }
    }
    return 0;
  }

  if (has_flag(argc, argv, "--sweep")) {
    const std::vector<int> scales =
        parse_scales(arg_value(argc, argv, "--scales", "1,2"));
    if (scales.empty()) {
      std::fprintf(stderr, "bad --scales list\n");
      print_usage();
      return 2;
    }
    // The batch sweep dimension: 0 keeps each preset's per-tenant batches.
    const std::string batches_def = batch ? std::to_string(batch) : "1";
    const std::vector<int> batches = parse_scales(
        arg_value(argc, argv, "--batches", batches_def.c_str()));
    if (batches.empty()) {
      std::fprintf(stderr, "bad --batches list\n");
      print_usage();
      return 2;
    }
    return run_sweep(scenarios, backends, scales, batches, seed, no_qos,
                     no_supervisor, faults);
  }

  // Timeline/trace/record capture one run's time axis; a multi-cell sweep
  // would interleave unrelated runs into one file, so require a single
  // cell. Replay likewise targets exactly one recorded run.
  const bool want_obs = !timeline_path.empty() || !trace_path.empty() ||
                        !record_path.empty();
  if ((want_obs || !replay_path.empty()) &&
      scenarios.size() * backends.size() != 1) {
    std::fprintf(stderr,
                 "--timeline/--trace/--record/--replay need a single "
                 "(scenario, backend) cell; pick --scenario NAME and "
                 "--backend NAME\n");
    return 2;
  }

  std::optional<vl::replay::Trace> replay_trace;
  if (!replay_path.empty()) {
    try {
      replay_trace = vl::replay::Trace::load(replay_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--replay %s: %s\n", replay_path.c_str(),
                   e.what());
      return 2;
    }
    if (replay_trace->sharded != (shards > 0)) {
      std::fprintf(stderr,
                   "--replay: trace was recorded on the %s engine; %s\n",
                   replay_trace->sharded ? "sharded" : "classic",
                   replay_trace->sharded
                       ? "pass --shards N to replay it"
                       : "drop --shards to replay it");
      return 2;
    }
    std::fprintf(stderr,
                 "replay: %zu records from %s (scenario=%s backend=%s "
                 "seed=%llu)\n",
                 replay_trace->records.size(), replay_path.c_str(),
                 replay_trace->scenario.c_str(),
                 replay_trace->backend.c_str(),
                 static_cast<unsigned long long>(replay_trace->seed));
  }

  vl::obs::Timeline timeline;
  // On overflow, coarsen (halve history, keeping full-run coverage) rather
  // than silently evicting the oldest epochs.
  timeline.set_auto_coarsen(true);
  vl::obs::Tracer tracer;
  vl::replay::TraceRecorder recorder;
  vl::obs::RunHooks hooks;
  hooks.sample_every = sample_every;
  if (!timeline_path.empty()) hooks.timeline = &timeline;
  if (!trace_path.empty()) hooks.tracer = &tracer;
  if (!record_path.empty()) hooks.recorder = &recorder;

  bool slo_ok = true;
  bool conserved = true;  // --churn zero-loss check
  std::string metrics_json;  // Accumulated `runs` array body.
  bool header_done = false;
  for (const auto& name : scenarios) {
    for (Backend b : backends) {
      vl::traffic::EngineResult r;
      try {
        r = run_cell(name, b, seed, scale, no_qos, batch, shards,
                     sim_threads, tenants, hooks.any() ? &hooks : nullptr,
                     no_supervisor, faults, churn,
                     replay_trace ? &*replay_trace : nullptr);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
      // Churn conservation: a tenant leaving/rejoining must strand nothing
      // — every generated message is delivered or accounted as dropped.
      if (!churn.empty()) {
        for (const auto& t : r.metrics.tenants) {
          if (t.generated == t.delivered + t.dropped) continue;
          std::fprintf(stderr,
                       "churn: conservation VIOLATED for tenant %s: "
                       "generated=%llu delivered=%llu dropped=%llu\n",
                       t.tenant.c_str(),
                       static_cast<unsigned long long>(t.generated),
                       static_cast<unsigned long long>(t.delivered),
                       static_cast<unsigned long long>(t.dropped));
          conserved = false;
        }
      }
      if (!slo_class.empty()) {
        for (const auto& c : r.metrics.by_class()) {
          if (to_string(c.cls) != slo_class || !c.slo_delivered) continue;
          const double att = 100.0 * static_cast<double>(c.slo_within) /
                             static_cast<double>(c.slo_delivered);
          std::fprintf(stderr, "assert-slo: %s %s %s=%.2f%% (need %.2f%%)\n",
                       name.c_str(), r.backend.c_str(), slo_class.c_str(),
                       att, slo_threshold);
          if (att < slo_threshold) slo_ok = false;
        }
      }
      // One shared CSV header across the whole sweep.
      const std::string csv = r.csv();
      const std::size_t nl = csv.find('\n');
      std::fputs(header_done ? csv.c_str() + nl + 1 : csv.c_str(), stdout);
      header_done = true;
      if (!quiet) std::fprintf(stderr, "%s\n", r.table().c_str());
      if (!metrics_json_path.empty()) {
        if (!metrics_json.empty()) metrics_json += ",\n";
        metrics_json += "{\"scenario\":\"" + r.scenario + "\",\"backend\":\"" +
                        r.backend + "\",\"seed\":" + std::to_string(r.seed) +
                        ",\"scale\":" + std::to_string(r.scale) +
                        ",\"events\":" + std::to_string(r.events) +
                        ",\"metrics\":" + r.metrics.json() + "}";
      }
    }
  }
  if (!timeline_path.empty()) {
    // Surface ring-capacity losses: with auto-coarsen the file still
    // covers the whole run, but at a coarser effective cadence the reader
    // should know about; dropped() > 0 would mean truncated history.
    if (timeline.coarsenings() > 0)
      std::fprintf(stderr,
                   "timeline: ring filled %llu time(s); auto-coarsened to an "
                   "effective --sample-every of ~%llu ticks\n",
                   static_cast<unsigned long long>(timeline.coarsenings()),
                   static_cast<unsigned long long>(
                       sample_every << timeline.coarsenings()));
    if (timeline.dropped() > 0)
      std::fprintf(stderr,
                   "timeline: warning: %llu oldest epochs evicted by the "
                   "ring cap; raise --sample-every to keep full coverage\n",
                   static_cast<unsigned long long>(timeline.dropped()));
    if (!timeline.write(timeline_path)) {
      std::fprintf(stderr, "cannot write %s\n", timeline_path.c_str());
      return 1;
    }
  }
  if (!trace_path.empty()) write_file(trace_path, tracer.json());
  if (!metrics_json_path.empty())
    write_file(metrics_json_path, "{\"runs\":[\n" + metrics_json + "\n]}\n");
  if (!record_path.empty()) {
    const vl::replay::Trace tr = recorder.finish();
    if (!tr.save(record_path)) {
      std::fprintf(stderr, "cannot write %s\n", record_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "recorded %zu messages to %s\n", tr.records.size(),
                 record_path.c_str());
  }
  if (!slo_ok) {
    std::fprintf(stderr, "assert-slo: FAILED (attainment below %.2f%%)\n",
                 slo_threshold);
    return 3;
  }
  if (!conserved) {
    std::fprintf(stderr, "churn: conservation FAILED\n");
    return 4;
  }
  return 0;
}
