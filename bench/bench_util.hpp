#pragma once
// Shared helpers for the figure-regeneration binaries.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "common/table.hpp"
#include "squeue/factory.hpp"

namespace vl::bench {

/// --scale N multiplier from argv (default 1); benches keep default sizes
/// close to the paper's working points but allow quick smoke runs.
inline int arg_scale(int argc, char** argv, int def = 1) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--scale") == 0) return std::atoi(argv[i + 1]);
  return def;
}

/// Value of `--flag VALUE` from argv, or `def` when absent.
inline const char* arg_value(int argc, char** argv, const char* flag,
                             const char* def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return def;
}

/// Backend name as accepted by every bench CLI (`--backend ...`).
inline std::optional<squeue::Backend> parse_backend(const std::string& s) {
  if (s == "blfq") return squeue::Backend::kBlfq;
  if (s == "zmq") return squeue::Backend::kZmq;
  if (s == "vl") return squeue::Backend::kVl;
  if (s == "vlideal" || s == "vl-ideal") return squeue::Backend::kVlIdeal;
  if (s == "caf") return squeue::Backend::kCaf;
  return std::nullopt;
}

inline void print_header(const char* fig, const char* what) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", fig, what);
  std::printf("=============================================================\n");
}

}  // namespace vl::bench
