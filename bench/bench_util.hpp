#pragma once
// Shared helpers for the figure-regeneration binaries.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table.hpp"

namespace vl::bench {

/// --scale N multiplier from argv (default 1); benches keep default sizes
/// close to the paper's working points but allow quick smoke runs.
inline int arg_scale(int argc, char** argv, int def = 1) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--scale") == 0) return std::atoi(argv[i + 1]);
  return def;
}

inline void print_header(const char* fig, const char* what) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", fig, what);
  std::printf("=============================================================\n");
}

}  // namespace vl::bench
