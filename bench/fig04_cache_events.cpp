// Fig. 4 — Cache events per BLFQ push as producers grow: invalidations
// (red/top line in the paper) and shared->exclusive upgrades (blue/bottom).
// The paper measured these with perf counters on Platform 2; here the MESI
// model counts the same two events. Also prints the Fig. 3-style state
// trace of one lock line bouncing across three cores.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "runtime/machine.hpp"
#include "squeue/blfq.hpp"

namespace {

using namespace vl;

struct Events {
  double invalidations_per_push;
  double upgrades_per_push;
  double snoops_per_push;
};

Events measure(int producers, int per_producer) {
  runtime::Machine m;
  squeue::SimBlfq q(m, 4096);
  for (int p = 0; p < producers; ++p) {
    sim::spawn([](squeue::Channel& q, sim::SimThread t, int n) -> sim::Co<void> {
      for (int i = 0; i < n; ++i) co_await q.send1(t, i);
    }(q, m.thread_on(static_cast<CoreId>(p)), per_producer));
  }
  sim::spawn([](squeue::Channel& q, sim::SimThread t, int n) -> sim::Co<void> {
    for (int i = 0; i < n; ++i) (void)co_await q.recv1(t);
  }(q, m.thread_on(15), producers * per_producer));
  m.run();
  const auto& st = m.mem().stats();
  const double pushes = static_cast<double>(producers) * per_producer;
  return {static_cast<double>(st.invalidations) / pushes,
          static_cast<double>(st.upgrades) / pushes,
          static_cast<double>(st.snoops) / pushes};
}

void fig3_trace() {
  std::printf("\n-- Fig. 3 companion: one atomic line on 3 cores --\n");
  runtime::Machine m;
  m.mem().set_trace([&](Tick tick, CoreId c, Addr, const char* what) {
    std::printf("  t=%-6llu core%u %s\n",
                static_cast<unsigned long long>(tick), c, what);
  });
  const Addr lock = m.alloc(kLineSize);
  for (CoreId c = 0; c < 3; ++c) {
    sim::spawn([](sim::SimThread t, Addr a) -> sim::Co<void> {
      for (int i = 0; i < 2; ++i) co_await t.fetch_add64(a, 1);
    }(m.thread_on(c), lock));
  }
  m.run();
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = vl::bench::arg_scale(argc, argv);
  vl::bench::print_header(
      "Figure 4", "cache events per BLFQ push vs producer count");

  TextTable t({"producers", "invalidations/push", "S->E upgrades/push",
               "snoops/push"});
  for (int p : {1, 2, 4, 6, 8, 10, 12, 15}) {
    const Events e = measure(p, 150 * scale);
    t.add_row({std::to_string(p), TextTable::num(e.invalidations_per_push, 2),
               TextTable::num(e.upgrades_per_push, 2),
               TextTable::num(e.snoops_per_push, 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nExpected shape: both event rates grow with the number of "
              "sharers; invalidations sit above upgrades.\n");

  fig3_trace();
  return 0;
}
