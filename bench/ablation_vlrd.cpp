// Ablation sweeps for the VLRD design choices DESIGN.md calls out:
//   1. buffer depth (8..256 entries) under incast pressure — how much
//      device buffering the back-pressure mechanism needs;
//   2. device round-trip latency — sensitivity of ping-pong to the
//      ~14-cycle bound § III-B cites;
//   3. message batching (1 vs 7 dwords per line) — the Fig. 10 control
//      region lets small messages share one line push.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "workloads/runner.hpp"

namespace {

using namespace vl;

double incast_ns(std::uint32_t entries, int scale) {
  sim::SystemConfig cfg;
  cfg.vlrd.prod_entries = entries;
  cfg.vlrd.cons_entries = entries;
  runtime::Machine m(cfg);
  squeue::ChannelFactory f(m, squeue::Backend::kVl);
  return workloads::run_incast(m, f, scale).ns;
}

double pingpong_ns_with_latency(Tick device_lat, Tick inject_lat, int scale) {
  sim::SystemConfig cfg;
  cfg.vlrd.device_lat = device_lat;
  cfg.vlrd.inject_lat = inject_lat;
  runtime::Machine m(cfg);
  squeue::ChannelFactory f(m, squeue::Backend::kVl);
  return workloads::run_pingpong(m, f, scale).ns;
}

double pingpong_ns_batched(int words, int scale) {
  runtime::Machine m{squeue::config_for(squeue::Backend::kVl)};
  squeue::ChannelFactory f(m, squeue::Backend::kVl);
  const auto r = workloads::run_pingpong(m, f, scale, words);
  return r.ns / static_cast<double>(r.messages * words);  // ns per dword
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = vl::bench::arg_scale(argc, argv);
  vl::bench::print_header("Ablation", "VLRD design-choice sweeps");

  std::printf("\n-- 1. prodBuf/consBuf depth under incast (back-pressure) --\n");
  TextTable t1({"entries", "incast ns", "vs 64-entry"});
  const double base64 = incast_ns(64, scale);
  for (std::uint32_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const double ns = incast_ns(n, scale);
    t1.add_row({std::to_string(n), TextTable::num(ns, 0),
                TextTable::num(ns / base64, 3)});
  }
  std::printf("%s", t1.render().c_str());

  std::printf("\n-- 2. device round-trip latency (ping-pong sensitivity) --\n");
  TextTable t2({"device_lat (cyc)", "inject_lat (cyc)", "pingpong ns"});
  for (Tick d : {0u, 7u, 14u, 28u, 56u}) {
    const Tick inj = d * 24 / 14;
    t2.add_row({std::to_string(d), std::to_string(inj),
                TextTable::num(pingpong_ns_with_latency(d, inj, scale), 0)});
  }
  std::printf("%s", t2.render().c_str());

  std::printf("\n-- 3. control-region batching (ns per dword moved) --\n");
  TextTable t3({"dwords/line", "ns per dword"});
  for (int w : {1, 2, 4, 7}) {
    t3.add_row({std::to_string(w),
                TextTable::num(pingpong_ns_batched(w, scale), 2)});
  }
  std::printf("%s\n", t3.render().c_str());
  std::printf("Expected shapes: deeper buffers help incast until the "
              "consumer is the bottleneck; ping-pong degrades linearly with "
              "device latency; batching amortizes the push cost per dword.\n");
  return 0;
}
