// Fig. 11 — the headline evaluation: 7 benchmarks x {BLFQ, ZMQ, VL64,
// VL(ideal)}, reporting
//   (a) execution time normalized to BLFQ (lower is better),
//   (b) snoop traffic normalized to BLFQ,
//   (c) memory (DRAM) transactions normalized to BLFQ,
// plus the paper's headline aggregates: geomean VL speedup (paper: 2.09x)
// and average memory-traffic reduction (paper: 61%). Workloads are looked
// up by name in the registry (the paper's own Table II set).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "workloads/runner.hpp"

namespace {

using namespace vl;
using squeue::Backend;
using workloads::RunConfig;
using workloads::WorkloadResult;

const std::vector<std::string> kNames = {"ping-pong", "halo",    "sweep",
                                         "incast",    "FIR",     "bitonic",
                                         "pipeline"};
const std::vector<Backend> kBackends = {Backend::kBlfq, Backend::kZmq,
                                        Backend::kVl, Backend::kVlIdeal};

}  // namespace

int main(int argc, char** argv) {
  const int scale = vl::bench::arg_scale(argc, argv);
  vl::bench::print_header("Figure 11",
                          "7 benchmarks x 4 queue schemes on the Table III "
                          "machine (all values normalized to BLFQ)");

  std::map<std::string, std::map<Backend, WorkloadResult>> results;
  for (const std::string& name : kNames) {
    for (Backend b : kBackends) {
      RunConfig rc = workloads::default_config(name);
      rc.backend = b;
      rc.scale = scale;
      rc.bitonic_workers = 15;
      results[name][b] = run(name, rc);
      std::fprintf(stderr, "  done %-9s %-9s %12.0f ns\n", name.c_str(),
                   squeue::to_string(b), results[name][b].ns);
    }
  }

  auto norm = [&](const std::string& name, Backend b, auto getter) {
    const double base = getter(results[name][Backend::kBlfq]);
    const double v = getter(results[name][b]);
    return base > 0 ? v / base : 0.0;
  };

  const char* titles[3] = {"(a) execution time / BLFQ",
                           "(b) snoop traffic / BLFQ",
                           "(c) memory transactions / BLFQ"};
  for (int fig = 0; fig < 3; ++fig) {
    std::printf("\n-- Fig. 11%c: %s --\n", 'a' + fig, titles[fig]);
    TextTable t({"benchmark", "BLFQ", "ZMQ", "VL(ideal)", "VL64"});
    for (const std::string& name : kNames) {
      auto getter = [fig](const WorkloadResult& r) -> double {
        if (fig == 0) return r.ns;
        if (fig == 1) return static_cast<double>(r.mem.snoops);
        return static_cast<double>(r.mem.mem_txns());
      };
      t.add_row({name, TextTable::num(norm(name, Backend::kBlfq, getter), 3),
                 TextTable::num(norm(name, Backend::kZmq, getter), 3),
                 TextTable::num(norm(name, Backend::kVlIdeal, getter), 3),
                 TextTable::num(norm(name, Backend::kVl, getter), 3)});
    }
    std::printf("%s", t.render().c_str());
  }

  // Headline aggregates.
  std::vector<double> speedups, mem_ratios;
  for (const std::string& name : kNames) {
    speedups.push_back(results[name][Backend::kBlfq].ns /
                       results[name][Backend::kVl].ns);
    const double base =
        static_cast<double>(results[name][Backend::kBlfq].mem.mem_txns());
    if (base > 0)
      mem_ratios.push_back(
          static_cast<double>(results[name][Backend::kVl].mem.mem_txns()) /
          base);
  }
  double mem_red = 0;
  for (double r : mem_ratios) mem_red += (1.0 - r);
  mem_red = 100.0 * mem_red / static_cast<double>(mem_ratios.size());

  std::printf("\nHeadline: VL geomean speedup over BLFQ = %.2fx "
              "(paper: 2.09x)\n",
              geomean(speedups));
  std::printf("Headline: VL average memory-traffic reduction = %.0f%% "
              "(paper: 61%%)\n",
              mem_red);
  std::printf("Expected shape: VL fastest everywhere (largest on ping-pong, "
              "smallest on sweep); VL snoops lowest except FIR; BLFQ memory "
              "traffic explodes on incast/FIR.\n");
  return 0;
}
