// Fig. 12 — bitonic scalability: fixed sorting workload split across 1, 3,
// 7, 15 workers (plus the master), for BLFQ / ZMQ / VL(ideal) / VL.
// Speedup is relative to BLFQ with one worker (2 total threads), matching
// the paper's presentation. Paper shape: ZMQ wins at 2-4 threads then
// collapses; BLFQ stops scaling at 4; VL keeps gaining to 8; at 16 the
// master's serial work dominates for everyone.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.hpp"
#include "workloads/runner.hpp"

int main(int argc, char** argv) {
  using namespace vl;
  using squeue::Backend;
  const int scale = vl::bench::arg_scale(argc, argv, 2);
  vl::bench::print_header("Figure 12",
                          "bitonic speedup vs total threads (fixed work)");

  const std::vector<int> workers = {1, 3, 7, 15};
  const std::vector<Backend> backends = {Backend::kBlfq, Backend::kZmq,
                                         Backend::kVlIdeal, Backend::kVl};

  std::map<Backend, std::map<int, double>> ns;
  for (Backend b : backends) {
    for (int w : workers) {
      workloads::RunConfig rc = workloads::default_config("bitonic");
      rc.backend = b;
      rc.scale = scale;
      rc.bitonic_workers = w;
      rc.bitonic_compare_cost = workloads::kFig12CompareCost;
      ns[b][w] = run("bitonic", rc).ns;
      std::fprintf(stderr, "  done %-9s workers=%-2d %12.0f ns\n",
                   squeue::to_string(b), w, ns[b][w]);
    }
  }

  const double base = ns[Backend::kBlfq][1];
  TextTable t({"total threads", "BLFQ", "ZMQ", "VL(ideal)", "VL"});
  for (int w : workers) {
    t.add_row({std::to_string(w + 1),
               TextTable::num(base / ns[Backend::kBlfq][w], 2),
               TextTable::num(base / ns[Backend::kZmq][w], 2),
               TextTable::num(base / ns[Backend::kVlIdeal][w], 2),
               TextTable::num(base / ns[Backend::kVl][w], 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Expected shape: VL scales furthest; software queues flatten "
              "early; all saturate when the master dominates.\n");
  return 0;
}
