// Indirect-buffer (bulk payload) bench — the § III-D extension this repo
// implements in full. A 2-stage pipeline moves fixed-size payloads by
// descriptor over each queue backend, sweeping payload size, and compares
// the two region-recycling strategies (shared-CAS Treiber free list vs a
// channel-recycled free list) on coherence traffic.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "indirect/indirect.hpp"
#include "squeue/factory.hpp"

namespace {

using namespace vl;
using indirect::ChannelRegionPool;
using indirect::IndirectChannel;
using indirect::PoolBase;
using indirect::RegionPool;
using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;
using squeue::Backend;

struct Result {
  double ns_per_payload = 0;
  std::uint64_t snoops = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t dram = 0;
};

constexpr int kProducers = 2;
constexpr int kConsumers = 2;

Result run_bulk(Backend backend, std::size_t payload_bytes, int payloads,
                bool channel_pool) {
  Machine m(squeue::config_for(backend));
  squeue::ChannelFactory f(m, backend);
  auto data_ch = f.make("data", 32, 2);
  std::unique_ptr<squeue::Channel> free_ch;
  std::unique_ptr<PoolBase> pool;
  constexpr std::uint32_t kRegions = 16;
  if (channel_pool) {
    free_ch = f.make("freelist", 2 * kRegions, 1);
    auto cp =
        std::make_unique<ChannelRegionPool>(m, *free_ch, payload_bytes,
                                            kRegions);
    spawn(cp->seed(m.thread_on(15)));
    pool = std::move(cp);
  } else {
    pool = std::make_unique<RegionPool>(m, payload_bytes, kRegions);
  }
  IndirectChannel ic(m, *data_ch, *pool);

  const int per_prod = payloads / kProducers;
  const int per_cons = payloads / kConsumers;
  std::vector<std::uint8_t> payload(payload_bytes, 0xa5);
  for (int p = 0; p < kProducers; ++p) {
    spawn([](IndirectChannel& ic, SimThread t, int n,
             const std::vector<std::uint8_t>* payload) -> Co<void> {
      for (int i = 0; i < n; ++i) co_await ic.send_bytes(t, *payload);
    }(ic, m.thread_on(static_cast<CoreId>(p)), per_prod, &payload));
  }
  for (int c = 0; c < kConsumers; ++c) {
    spawn([](IndirectChannel& ic, SimThread t, int n) -> Co<void> {
      for (int i = 0; i < n; ++i) (void)co_await ic.recv_bytes(t);
    }(ic, m.thread_on(static_cast<CoreId>(4 + c)), per_cons));
  }
  m.run();
  const auto& ms = m.mem().stats();
  Result r;
  r.ns_per_payload = m.ns(m.now()) / payloads;
  r.snoops = ms.snoops;
  r.upgrades = ms.upgrades;
  r.dram = ms.dram_reads + ms.dram_writes;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = vl::bench::arg_scale(argc, argv);
  const int payloads = 32 * scale;
  vl::bench::print_header("Indirect buffers (§ III-D extension)",
                          "bulk payloads by descriptor, 2:2 pipeline");

  std::printf("\n-- payload-size sweep, ns/payload (Treiber pool) --\n");
  TextTable t1({"bytes", "BLFQ", "ZMQ", "VL", "CAF"});
  for (std::size_t bytes : {256u, 1024u, 2048u, 4096u}) {
    t1.add_row({std::to_string(bytes),
                TextTable::num(run_bulk(Backend::kBlfq, bytes, payloads,
                                        false).ns_per_payload, 0),
                TextTable::num(run_bulk(Backend::kZmq, bytes, payloads,
                                        false).ns_per_payload, 0),
                TextTable::num(run_bulk(Backend::kVl, bytes, payloads,
                                        false).ns_per_payload, 0),
                TextTable::num(run_bulk(Backend::kCaf, bytes, payloads,
                                        false).ns_per_payload, 0)});
  }
  std::printf("%s", t1.render().c_str());

  std::printf("\n-- recycle strategy on VL, 2 KiB payloads --\n");
  TextTable t2({"free list", "ns/payload", "snoops", "upgrades", "DRAM"});
  const Result treiber = run_bulk(Backend::kVl, 2048, payloads, false);
  const Result chan = run_bulk(Backend::kVl, 2048, payloads, true);
  t2.add_row({"shared CAS (Treiber)",
              TextTable::num(treiber.ns_per_payload, 0),
              std::to_string(treiber.snoops), std::to_string(treiber.upgrades),
              std::to_string(treiber.dram)});
  t2.add_row({"VL channel-recycled", TextTable::num(chan.ns_per_payload, 0),
              std::to_string(chan.snoops), std::to_string(chan.upgrades),
              std::to_string(chan.dram)});
  std::printf("%s\n", t2.render().c_str());

  std::printf(
      "Expected shapes: descriptor cost is amortized as payloads grow, so\n"
      "backends converge at large sizes with VL ahead on small/medium\n"
      "payloads; the channel-recycled free list removes the shared CAS\n"
      "word, cutting upgrade/invalidation traffic like the paper's zero-\n"
      "shared-state argument predicts.\n");
  return 0;
}
