// Coherence-protocol ablation: MESI (the paper's gem5 baseline) vs MOESI.
//
// The software queues bounce dirty lines between producer and consumer
// cores; under MESI every read-snoop of a Modified line forces an LLC
// writeback, while MOESI's Owned state keeps the dirty line in the
// sourcing L1. This sweep quantifies how much of the software queues'
// memory traffic is protocol-induced — and shows that VL's advantage is
// *not* an artifact of the MESI baseline: VL barely moves between
// protocols because its transfers bypass shared coherent state entirely.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "workloads/runner.hpp"

namespace {

using namespace vl;
using squeue::Backend;

struct Row {
  double ns;
  std::uint64_t writebacks;
  std::uint64_t mem_txns;
};

Row run_one(const workloads::WorkloadInfo& w, Backend b, sim::Protocol proto,
            int scale) {
  runtime::Machine m([&] {
    sim::SystemConfig cfg = squeue::config_for(b);
    cfg.cache.protocol = proto;
    return cfg;
  }());
  squeue::ChannelFactory f(m, b);
  workloads::RunConfig rc = w.defaults;
  rc.backend = b;
  rc.scale = scale;
  const workloads::WorkloadResult r = w.kernel(m, f, rc);
  return {r.ns, r.mem.writebacks, r.mem.mem_txns()};
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = vl::bench::arg_scale(argc, argv);
  vl::bench::print_header("Ablation (protocol)",
                          "MESI vs MOESI under queue traffic");

  for (const char* name : {"ping-pong", "incast"}) {
    const workloads::WorkloadInfo* w = workloads::find_workload(name);
    if (!w) continue;
    std::printf("\n-- %s --\n", name);
    TextTable t({"backend", "MESI ns", "MOESI ns", "speedup",
                 "MESI wbacks", "MOESI wbacks"});
    for (Backend b : {Backend::kBlfq, Backend::kZmq, Backend::kVl}) {
      const Row mesi = run_one(*w, b, sim::Protocol::kMesi, scale);
      const Row moesi = run_one(*w, b, sim::Protocol::kMoesi, scale);
      t.add_row({squeue::to_string(b), TextTable::num(mesi.ns, 0),
                 TextTable::num(moesi.ns, 0),
                 TextTable::num(mesi.ns / moesi.ns, 3) + "x",
                 std::to_string(mesi.writebacks),
                 std::to_string(moesi.writebacks)});
    }
    std::printf("%s", t.render().c_str());
  }
  std::printf(
      "\nExpected shapes: MOESI trims the software queues' writebacks\n"
      "(dirty queue lines stay in L1s), narrowing but not closing the gap\n"
      "to VL; VL itself is nearly protocol-invariant because its data path\n"
      "touches no shared coherent state.\n");
  return 0;
}
