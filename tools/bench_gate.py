#!/usr/bin/env python3
"""Perf-regression gate over BENCH_sim.json.

Compares a freshly produced bench_sim_throughput snapshot against the
committed baseline and fails when any (scenario, backend) cell regressed by
more than the tolerance on events-per-delivered-message — the simulator
kernel's figure of merit. ev/msg is fully deterministic for a fixed seed
and scale (unlike wall-clock, which CI runners make useless), so the gate
has no flake margin to eat: a regression is a real behavioural change.

    bench_gate.py BASELINE CURRENT [--tolerance 0.15]
                  [--expect-gain "CELL=FRACTION" ...]

--expect-gain pins a variant's advantage: the named cell — e.g.
"incast-burst(b8)/VL64" (batched injection) or "shard-diurnal(s8)/VL64"
(8-shard mesh) — must show ev/msg at least FRACTION below its baseline
sibling (the same cell with the "(bN)"/"(sN)" suffix stripped) in the
CURRENT run. This is how CI enforces "batching/sharding must keep paying",
not just "must not regress".

Exit status: 0 pass, 1 regression / unmet gain (or a baseline cell missing
from the current run), 2 bad invocation/input.

Improvements beyond tolerance are reported but pass — commit the fresh
snapshot as the new baseline when they are intentional.
"""

import argparse
import json
import re
import sys


def bail(msg):
    print(f"bench_gate: {msg}", file=sys.stderr)
    sys.exit(2)


def load_results(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        bail(f"cannot read {path}: {e}")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        bail(f"{path} has no results[]")
    out = {}
    for r in rows:
        key = (r["scenario"], r["backend"])
        if key in out:
            bail(f"duplicate cell {key} in {path}")
        out[key] = float(r["events_per_msg"])
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional ev/msg increase (default 0.15)")
    ap.add_argument("--expect-gain", action="append", default=[],
                    metavar="CELL=FRACTION",
                    help='batched cell (e.g. "incast-burst(b8)/VL64") that '
                         'must beat its single-message sibling by at least '
                         'FRACTION on ev/msg in the current run')
    args = ap.parse_args()

    base = load_results(args.baseline)
    cur = load_results(args.current)

    failures = []
    width = max(len(f"{s} / {b}") for s, b in base) + 2
    print(f"{'cell':<{width}} {'base':>9} {'now':>9} {'delta':>8}")
    for key in sorted(base):
        cell = f"{key[0]} / {key[1]}"
        if key not in cur:
            failures.append(f"{cell}: missing from current run")
            print(f"{cell:<{width}} {base[key]:>9.2f} {'-':>9} {'GONE':>8}")
            continue
        delta = (cur[key] - base[key]) / base[key] if base[key] else 0.0
        flag = ""
        if delta > args.tolerance:
            failures.append(
                f"{cell}: ev/msg {base[key]:.2f} -> {cur[key]:.2f} "
                f"(+{delta:.1%} > {args.tolerance:.0%})")
            flag = "  << REGRESSION"
        elif delta < -args.tolerance:
            flag = "  (improved; consider refreshing the baseline)"
        print(f"{cell:<{width}} {base[key]:>9.2f} {cur[key]:>9.2f} "
              f"{delta:>+7.1%}{flag}")
    for key in sorted(set(cur) - set(base)):
        print(f"{key[0]} / {key[1]}: new cell (no baseline), skipped")

    for spec in args.expect_gain:
        cell, _, frac_s = spec.partition("=")
        scenario, _, backend = cell.partition("/")
        if not frac_s or not backend:
            bail(f"bad --expect-gain '{spec}' (want CELL=FRACTION)")
        frac = float(frac_s)
        sibling = re.sub(r"\((?:b|s)\d+\)$", "", scenario)
        if sibling == scenario:
            bail(f"--expect-gain cell '{scenario}' has no (bN)/(sN) suffix")
        batched, single = (scenario, backend), (sibling, backend)
        if batched not in cur or single not in cur:
            failures.append(f"--expect-gain {spec}: cell missing from current")
            continue
        gain = 1.0 - cur[batched] / cur[single] if cur[single] else 0.0
        ok = gain >= frac
        print(f"gain {scenario} vs {sibling} / {backend}: "
              f"{cur[single]:.2f} -> {cur[batched]:.2f} ({gain:+.1%}, "
              f"need >= {frac:.0%}){'' if ok else '  << UNMET'}")
        if not ok:
            failures.append(
                f"{cell}: batched ev/msg gain {gain:.1%} < required "
                f"{frac:.0%} vs {sibling}/{backend}")

    if failures:
        print("\nbench_gate: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
