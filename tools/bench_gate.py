#!/usr/bin/env python3
"""Perf-regression gate over BENCH_sim.json.

Compares a freshly produced bench_sim_throughput snapshot against the
committed baseline and fails when any (scenario, backend) cell regressed by
more than the tolerance on events-per-delivered-message — the simulator
kernel's figure of merit. ev/msg is fully deterministic for a fixed seed
and scale (unlike wall-clock, which CI runners make useless), so the gate
has no flake margin to eat: a regression is a real behavioural change.

    bench_gate.py BASELINE CURRENT [--tolerance 0.15]
                  [--cell-tolerance "CELL=FRACTION" ...]
                  [--expect-gain "CELL[@FIELD]=FRACTION" ...]

--cell-tolerance tightens (or loosens) the tolerance for one cell, e.g.
"wl-allreduce/VL64=0.10" holds the bsp-layer collective rewrites to within
10% of the hand-rolled kernels' ev/msg they replaced.

--expect-gain pins a variant's advantage: the named cell — e.g.
"incast-burst(b8)/VL64" (batched injection), "shard-diurnal(s8)/VL64"
(8-shard mesh), or "qos-adversarial-bulk(sup)/VL64@lat_p99" (closed-loop
QoS supervisor) — must show the chosen metric at least FRACTION below its
baseline sibling (the same cell with the "(bN)"/"(sN)"/"(sup)" suffix
stripped) in the CURRENT run. "@FIELD" picks the compared metric (default
events_per_msg; "@lat_p99" compares latency-class p99). This is how CI
enforces "batching/sharding/supervision must keep paying", not just "must
not regress".

Exit status: 0 pass, 1 regression / unmet gain (or a baseline cell missing
from the current run), 2 bad invocation/input.

Improvements beyond tolerance are reported but pass — commit the fresh
snapshot as the new baseline when they are intentional.
"""

import argparse
import json
import re
import sys


def bail(msg):
    print(f"bench_gate: {msg}", file=sys.stderr)
    sys.exit(2)


def load_results(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        bail(f"cannot read {path}: {e}")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        bail(f"{path} has no results[]")
    out = {}
    for r in rows:
        key = (r["scenario"], r["backend"])
        if key in out:
            bail(f"duplicate cell {key} in {path}")
        out[key] = {k: float(v) for k, v in r.items()
                    if isinstance(v, (int, float))}
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional ev/msg increase (default 0.15)")
    ap.add_argument("--cell-tolerance", action="append", default=[],
                    metavar="CELL=FRACTION",
                    help='per-cell tolerance override, e.g. '
                         '"wl-allreduce/VL64=0.10"')
    ap.add_argument("--expect-gain", action="append", default=[],
                    metavar="CELL=FRACTION",
                    help='batched cell (e.g. "incast-burst(b8)/VL64") that '
                         'must beat its single-message sibling by at least '
                         'FRACTION on ev/msg in the current run')
    args = ap.parse_args()

    base = load_results(args.baseline)
    cur = load_results(args.current)

    cell_tol = {}
    for spec in args.cell_tolerance:
        cell, _, frac_s = spec.partition("=")
        scenario, _, backend = cell.partition("/")
        if not frac_s or not backend:
            bail(f"bad --cell-tolerance '{spec}' (want CELL=FRACTION)")
        cell_tol[(scenario, backend)] = float(frac_s)
    for key in cell_tol:
        if key not in base:
            bail(f"--cell-tolerance cell {key[0]}/{key[1]} not in baseline")

    failures = []
    width = max(len(f"{s} / {b}") for s, b in base) + 2
    print(f"{'cell':<{width}} {'base':>9} {'now':>9} {'delta':>8}")
    for key in sorted(base):
        cell = f"{key[0]} / {key[1]}"
        bval = base[key]["events_per_msg"]
        if key not in cur:
            failures.append(f"{cell}: missing from current run")
            print(f"{cell:<{width}} {bval:>9.2f} {'-':>9} {'GONE':>8}")
            continue
        cval = cur[key]["events_per_msg"]
        delta = (cval - bval) / bval if bval else 0.0
        tol = cell_tol.get(key, args.tolerance)
        flag = ""
        if delta > tol:
            failures.append(
                f"{cell}: ev/msg {bval:.2f} -> {cval:.2f} "
                f"(+{delta:.1%} > {tol:.0%})")
            flag = "  << REGRESSION"
        elif delta < -tol:
            flag = "  (improved; consider refreshing the baseline)"
        print(f"{cell:<{width}} {bval:>9.2f} {cval:>9.2f} "
              f"{delta:>+7.1%}{flag}")
    for key in sorted(set(cur) - set(base)):
        print(f"{key[0]} / {key[1]}: new cell (no baseline), skipped")

    for spec in args.expect_gain:
        cell, _, frac_s = spec.partition("=")
        scenario, _, backend = cell.partition("/")
        if not frac_s or not backend:
            bail(f"bad --expect-gain '{spec}' (want CELL[@FIELD]=FRACTION)")
        backend, _, field = backend.partition("@")
        field = field or "events_per_msg"
        frac = float(frac_s)
        sibling = re.sub(r"\((?:b\d+|s\d+|sup)\)$", "", scenario)
        if sibling == scenario:
            bail(f"--expect-gain cell '{scenario}' has no "
                 f"(bN)/(sN)/(sup) suffix")
        variant, single = (scenario, backend), (sibling, backend)
        if variant not in cur or single not in cur:
            failures.append(f"--expect-gain {spec}: cell missing from current")
            continue
        if field not in cur[variant] or field not in cur[single]:
            failures.append(f"--expect-gain {spec}: field '{field}' missing")
            continue
        vval, sval = cur[variant][field], cur[single][field]
        gain = 1.0 - vval / sval if sval else 0.0
        ok = gain >= frac
        print(f"gain {scenario} vs {sibling} / {backend} on {field}: "
              f"{sval:.2f} -> {vval:.2f} ({gain:+.1%}, "
              f"need >= {frac:.0%}){'' if ok else '  << UNMET'}")
        if not ok:
            failures.append(
                f"{cell}: {field} gain {gain:.1%} < required "
                f"{frac:.0%} vs {sibling}/{backend}")

    if failures:
        print("\nbench_gate: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
