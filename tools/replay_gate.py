#!/usr/bin/env python3
"""Replay-fidelity gate over scenario_runner per-tenant CSVs.

Compares the CSV of a recorded run against the CSV of its replay and
enforces the record/replay plane's headline contract:

  * delivered counts match EXACTLY, row by row — the trace is the
    post-shed stream, so every recorded message copy must arrive in the
    replay (zero loss, zero duplication);
  * latency p99 within --p99-tolerance (default 5%) per row — replayed
    pacing reconstructs the recorded generation ticks, so the latency
    distribution must track the original closely (exactly, on the same
    backend);
  * SLO attainment within --attainment-tolerance points (default 5) for
    rows that carry an SLO.

Rows are matched by (scenario, backend, tenant, qos) — the per-tenant
rows, the per-class aggregates, and the "*" total all participate.
Generated/dropped are NOT compared: the recorded run may have shed
messages producer-side, while a replay never sheds (the trace already
reflects it).

    replay_gate.py RECORDED.csv REPLAYED.csv
                   [--p99-tolerance 0.05] [--attainment-tolerance 5.0]

Exit status: 0 pass, 1 fidelity violation, 2 bad invocation/input.
"""

import argparse
import csv
import sys


def bail(msg):
    print(f"replay_gate: {msg}", file=sys.stderr)
    sys.exit(2)


def load_rows(path):
    try:
        with open(path, newline="") as f:
            rows = list(csv.DictReader(f))
    except OSError as e:
        bail(f"cannot read {path}: {e}")
    if not rows:
        bail(f"{path} has no data rows")
    out = {}
    for r in rows:
        try:
            key = (r["scenario"], r["backend"], r["tenant"], r["qos"])
        except KeyError as e:
            bail(f"{path} is not a scenario_runner CSV (missing column {e})")
        if key in out:
            bail(f"duplicate row {key} in {path}")
        out[key] = r
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("recorded")
    ap.add_argument("replayed")
    ap.add_argument("--p99-tolerance", type=float, default=0.05,
                    help="max relative lat_p99 difference per row")
    ap.add_argument("--attainment-tolerance", type=float, default=5.0,
                    help="max slo_att_pct difference in points")
    args = ap.parse_args()

    rec = load_rows(args.recorded)
    rep = load_rows(args.replayed)

    failures = []
    for key, a in sorted(rec.items()):
        b = rep.get(key)
        label = "/".join(key)
        if b is None:
            failures.append(f"{label}: row missing from the replay")
            continue
        if a["delivered"] != b["delivered"]:
            failures.append(
                f"{label}: delivered {b['delivered']} != recorded "
                f"{a['delivered']} (must match exactly)")
        p99_a, p99_b = int(a["lat_p99"]), int(b["lat_p99"])
        if p99_a > 0:
            rel = abs(p99_b - p99_a) / p99_a
            if rel > args.p99_tolerance:
                failures.append(
                    f"{label}: lat_p99 {p99_b} vs recorded {p99_a} "
                    f"({rel * 100:.1f}% > {args.p99_tolerance * 100:.0f}%)")
        att_a, att_b = a["slo_att_pct"], b["slo_att_pct"]
        if att_a != "-" and att_b != "-":
            delta = abs(float(att_b) - float(att_a))
            if delta > args.attainment_tolerance:
                failures.append(
                    f"{label}: attainment {att_b} vs recorded {att_a} "
                    f"({delta:.1f} > {args.attainment_tolerance:.1f} points)")
    for key in sorted(rep):
        if key not in rec:
            failures.append("/".join(key) + ": extra row not in the recording")

    if failures:
        for f in failures:
            print(f"replay_gate: FAIL {f}", file=sys.stderr)
        sys.exit(1)
    print(f"replay_gate: {len(rec)} rows match "
          f"(delivered exact, p99 within {args.p99_tolerance * 100:.0f}%, "
          f"attainment within {args.attainment_tolerance:.0f} points)")


if __name__ == "__main__":
    main()
