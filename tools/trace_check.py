#!/usr/bin/env python3
"""Validate a Chrome-trace JSON file emitted by the obs::Tracer.

Checks the subset of the Trace Event Format that Perfetto / chrome://tracing
require to load the file, plus the invariants our tracer guarantees:

  * top-level object with a "traceEvents" array;
  * every event has numeric "pid"/"tid" and a "ph" in {B, E, i, M};
  * B/E/i events carry a numeric "ts"; B and i also carry "name" and "cat";
  * per (pid, tid) lane, B/E events are balanced (every E closes the most
    recent open B with the same name — proper nesting, no dangling spans);
  * per (pid, tid) lane, "ts" is non-decreasing (the tracer appends in
    event-execution order, which is (tick, seq)-sorted per lane).

Exit status 0 when the file passes, 1 with a diagnostic per violation
otherwise.  Usage: tools/trace_check.py TRACE.json
"""

import json
import sys


VALID_PH = {"B", "E", "i", "M"}


def check(path):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return ["%s: cannot parse: %s" % (path, e)]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["%s: no traceEvents array" % path]

    stacks = {}  # (pid, tid) -> list of open B-span names
    last_ts = {}  # (pid, tid) -> last seen ts
    n_spans = 0
    for i, ev in enumerate(events):
        where = "event %d" % i

        def err(msg):
            errors.append("%s: %s: %s" % (path, where, msg))

        if not isinstance(ev, dict):
            err("not an object")
            continue
        ph = ev.get("ph")
        if ph not in VALID_PH:
            err("bad ph %r" % (ph,))
            continue
        if not isinstance(ev.get("pid"), int) or not isinstance(
            ev.get("tid"), int
        ):
            err("pid/tid missing or non-numeric")
            continue
        lane = (ev["pid"], ev["tid"])
        if ph == "M":
            continue  # Metadata events carry no ts.

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            err("ts missing or non-numeric")
            continue
        if ts < last_ts.get(lane, 0):
            err(
                "ts %s decreases below %s in lane pid=%d tid=%d"
                % (ts, last_ts[lane], lane[0], lane[1])
            )
        last_ts[lane] = ts

        if ph in ("B", "i"):
            if not isinstance(ev.get("name"), str) or not isinstance(
                ev.get("cat"), str
            ):
                err("B/i event without string name/cat")
                continue
        if ph == "B":
            stacks.setdefault(lane, []).append(ev["name"])
            n_spans += 1
        elif ph == "E":
            stack = stacks.get(lane)
            if not stack:
                err(
                    "E with no open span in lane pid=%d tid=%d" % lane
                )
            else:
                top = stack.pop()
                name = ev.get("name")
                if name is not None and name != top:
                    err(
                        "E name %r closes open span %r (improper nesting)"
                        % (name, top)
                    )

    for lane, stack in stacks.items():
        if stack:
            errors.append(
                "%s: %d unclosed span(s) in lane pid=%d tid=%d: %s"
                % (path, len(stack), lane[0], lane[1], ", ".join(stack))
            )

    if not errors:
        print(
            "%s: OK (%d events, %d spans, %d lanes)"
            % (path, len(events), n_spans, len(last_ts))
        )
    return errors


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = check(argv[1])
    for e in errors:
        print(e, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
